#include "harness/report.h"

#include <cstdio>
#include <cstdlib>

#include "fedsearch/util/json_writer.h"

namespace fedsearch::bench {

BenchReport::BenchReport(std::string bench_name)
    : bench_name_(std::move(bench_name)) {}

void BenchReport::SetConfig(const ExperimentConfig& config) {
  AddConfig("scale", config.scale);
  AddConfig("qbs_runs", static_cast<double>(config.qbs_runs));
  AddConfig("seed", static_cast<double>(config.seed));
}

void BenchReport::AddConfig(std::string key, double value) {
  config_numbers_.emplace_back(std::move(key), value);
}

void BenchReport::AddConfig(std::string key, std::string value) {
  config_strings_.emplace_back(std::move(key), std::move(value));
}

BenchReport::Scenario& BenchReport::AddScenario(std::string name) {
  scenarios_.push_back(Scenario{std::move(name), {}});
  return scenarios_.back();
}

std::string BenchReport::ToJson() const {
  util::JsonWriter writer(/*indent=*/2);
  writer.BeginObject();
  writer.Key("schema_version").Value(1);
  writer.Key("bench").Value(bench_name_);
  writer.Key("git_sha").Value(GitSha());
  writer.Key("config").BeginObject();
  for (const auto& [key, value] : config_numbers_) {
    writer.Key(key).Value(value);
  }
  for (const auto& [key, value] : config_strings_) {
    writer.Key(key).Value(value);
  }
  writer.EndObject();
  writer.Key("scenarios").BeginArray();
  for (const Scenario& scenario : scenarios_) {
    writer.BeginObject();
    writer.Key("name").Value(scenario.name);
    writer.Key("values").BeginObject();
    for (const auto& [key, value] : scenario.values) {
      writer.Key(key).Value(value);
    }
    writer.EndObject();
    writer.EndObject();
  }
  writer.EndArray();
  writer.Key("metrics");
  if (embed_metrics_) {
    util::GlobalMetrics().WriteJson(writer);
  } else {
    writer.BeginObject();
    writer.Key("counters").BeginObject().EndObject();
    writer.Key("gauges").BeginObject().EndObject();
    writer.Key("histograms").BeginObject().EndObject();
    writer.EndObject();
  }
  writer.EndObject();
  return writer.str();
}

bool BenchReport::WriteFile(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "BenchReport: cannot open %s for writing\n",
                 path.c_str());
    return false;
  }
  const std::string json = ToJson();
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size() &&
                  std::fputc('\n', f) != EOF;
  std::fclose(f);
  if (!ok) {
    std::fprintf(stderr, "BenchReport: short write to %s\n", path.c_str());
  }
  return ok;
}

std::string GitSha() {
  if (const char* env = std::getenv("FEDSEARCH_GIT_SHA")) {
    if (env[0] != '\0') return env;
  }
#ifdef FEDSEARCH_SOURCE_DIR
  const std::string command = std::string("git -C \"") + FEDSEARCH_SOURCE_DIR +
                              "\" rev-parse --short HEAD 2>/dev/null";
  if (std::FILE* pipe = ::popen(command.c_str(), "r")) {
    char buf[64] = {0};
    std::string sha;
    if (std::fgets(buf, sizeof(buf), pipe) != nullptr) {
      sha = buf;
      while (!sha.empty() && (sha.back() == '\n' || sha.back() == '\r')) {
        sha.pop_back();
      }
    }
    ::pclose(pipe);
    if (!sha.empty()) return sha;
  }
#endif
  return "unknown";
}

void AppendLatencyPercentilesUs(BenchReport::Scenario& scenario,
                                const util::Histogram& latency_ns) {
  scenario.Add("p50_us", latency_ns.Percentile(50.0) / 1000.0);
  scenario.Add("p95_us", latency_ns.Percentile(95.0) / 1000.0);
  scenario.Add("p99_us", latency_ns.Percentile(99.0) / 1000.0);
  scenario.Add("mean_us", latency_ns.mean() / 1000.0);
  scenario.Add("max_us", static_cast<double>(latency_ns.max()) / 1000.0);
}

}  // namespace fedsearch::bench
