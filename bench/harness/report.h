#ifndef FEDSEARCH_BENCH_HARNESS_REPORT_H_
#define FEDSEARCH_BENCH_HARNESS_REPORT_H_

#include <string>
#include <utility>
#include <vector>

#include "fedsearch/util/metrics.h"
#include "harness/experiment.h"

namespace fedsearch::bench {

// Schema-versioned machine-readable bench result (the BENCH_*.json files).
// Layout (schema_version 1):
//
//   {
//     "schema_version": 1,
//     "bench": "serving_throughput",
//     "git_sha": "36f7f57",
//     "config": {"scale": 0.25, "seed": 7, ...},
//     "scenarios": [
//       {"name": "plain/cori", "values": {"qps_serial": ..., "p95_us": ...}},
//       ...
//     ],
//     "metrics": { <GlobalMetrics snapshot> }
//   }
//
// Scenario names and value keys carry the gate semantics used by
// tools/check_bench_regression.py: keys starting with "qps" are
// higher-is-better throughput, keys starting with "p95" are
// lower-is-better latency (microseconds). Everything else is
// informational — gated keys should be derived from CPU time, with
// load-sensitive wall-clock variants under a "wall_" prefix.
class BenchReport {
 public:
  struct Scenario {
    std::string name;
    std::vector<std::pair<std::string, double>> values;

    Scenario& Add(std::string key, double value) {
      values.emplace_back(std::move(key), value);
      return *this;
    }
  };

  explicit BenchReport(std::string bench_name);

  // Records the harness environment knobs under "config".
  void SetConfig(const ExperimentConfig& config);
  void AddConfig(std::string key, double value);
  void AddConfig(std::string key, std::string value);

  Scenario& AddScenario(std::string name);

  // When false, "metrics" is written with empty counters/gauges/histograms
  // sections instead of the GlobalMetrics snapshot. Benches whose output
  // must be bit-identical across runs use this: wall-clock histograms and
  // scheduling-dependent counters (thread-pool steals, cache races) vary
  // run to run even when every reported scenario value is deterministic.
  void set_embed_metrics(bool embed) { embed_metrics_ = embed; }

  // Pretty-printed JSON document (indent 2); embeds the current
  // GlobalMetrics snapshot under "metrics" (unless disabled above).
  std::string ToJson() const;

  // Writes ToJson() to `path` (with a trailing newline). Returns false and
  // prints to stderr on I/O failure.
  bool WriteFile(const std::string& path) const;

 private:
  std::string bench_name_;
  std::vector<std::pair<std::string, double>> config_numbers_;
  std::vector<std::pair<std::string, std::string>> config_strings_;
  std::vector<Scenario> scenarios_;
  bool embed_metrics_ = true;
};

// Short git revision of the source tree: the FEDSEARCH_GIT_SHA environment
// variable when set, otherwise `git rev-parse --short HEAD` run against
// the configure-time source directory, otherwise "unknown".
std::string GitSha();

// Converts a nanosecond latency histogram into the standard per-scenario
// latency keys: p50_us / p95_us / p99_us / mean_us / max_us.
void AppendLatencyPercentilesUs(BenchReport::Scenario& scenario,
                                const util::Histogram& latency_ns);

}  // namespace fedsearch::bench

#endif  // FEDSEARCH_BENCH_HARNESS_REPORT_H_
