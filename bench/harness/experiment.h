#ifndef FEDSEARCH_BENCH_HARNESS_EXPERIMENT_H_
#define FEDSEARCH_BENCH_HARNESS_EXPERIMENT_H_

#include <array>
#include <memory>
#include <string>
#include <vector>

#include "fedsearch/core/metasearcher.h"
#include "fedsearch/corpus/testbed.h"
#include "fedsearch/sampling/sample_result.h"
#include "fedsearch/selection/scoring.h"
#include "fedsearch/summary/metrics.h"

namespace fedsearch::bench {

// The three data sets of Section 5.1.
enum class DataSet { kTrec4, kTrec6, kWeb };

// The two content-summary construction strategies of Section 5.2.
enum class SamplerKind { kQbs, kFps };

const char* Name(DataSet dataset);
const char* Name(SamplerKind sampler);

// Global experiment knobs, read from the environment:
//   FEDSEARCH_SCALE     — testbed size multiplier (default 0.25; 1.0
//                         approximates the paper's database sizes),
//   FEDSEARCH_QBS_RUNS  — QBS sample runs averaged per database (default
//                         1; the paper uses 5),
//   FEDSEARCH_SEED      — base RNG seed (default 7).
struct ExperimentConfig {
  double scale = 0.25;
  size_t qbs_runs = 1;
  uint64_t seed = 7;
};

ExperimentConfig ConfigFromEnv();

// Process-wide cache of built testbeds (building the Web set takes tens of
// seconds; every bench binary touches several configurations).
const corpus::Testbed& GetTestbed(DataSet dataset,
                                  const ExperimentConfig& config);

// One sampled federation: per-database sample results + classifications.
// QBS uses the testbed's directory categories; FPS uses its own derived
// classification (Section 5.2).
struct Federation {
  std::vector<sampling::SampleResult> samples;
  std::vector<corpus::CategoryId> classifications;
};

// Runs a full sampling pass over the data set. `run_index` seeds the
// sampler streams so QBS runs can be averaged. `keep_documents` retains
// the analyzed sample documents (needed by ReDDE).
Federation SampleFederation(DataSet dataset, SamplerKind sampler,
                            bool frequency_estimation, size_t run_index,
                            const ExperimentConfig& config,
                            bool keep_documents = false);

std::unique_ptr<core::Metasearcher> BuildMetasearcher(
    DataSet dataset, Federation federation, const ExperimentConfig& config,
    core::MetasearcherOptions options = {});

// ---------------------------------------------------------------- tables --

// Prints one of the Tables 4-9: the selected quality metric for every
// (data set, sampler, frequency estimation) configuration, with and
// without shrinkage. `pick` selects the metric from the bundle.
void RunQualityTable(const std::string& title,
                     double (*pick)(const summary::SummaryQuality&),
                     const ExperimentConfig& config);

// --------------------------------------------------------------- figures --

// Average R_k over the data set's queries for k = 1..kMaxK, for one
// selection method. Queries without any relevant documents are skipped
// (R_k is undefined for them).
inline constexpr size_t kMaxK = 20;

enum class SelectionMethod {
  kPlain,        // unshrunk summaries (QBS-Plain / FPS-Plain)
  kShrinkage,    // adaptive shrinkage (Figure 3)
  kHierarchical  // the hierarchical baseline of [17]
};

const char* Name(SelectionMethod method);

std::array<double, kMaxK> AverageRkCurve(
    DataSet dataset, const core::Metasearcher& meta,
    const selection::ScoringFunction& scorer, SelectionMethod method,
    const ExperimentConfig& config);

// Same curve for an explicit summary mode (used by the ablations, e.g.
// universal shrinkage).
std::array<double, kMaxK> AverageRkCurveForMode(
    DataSet dataset, const core::Metasearcher& meta,
    const selection::ScoringFunction& scorer, core::SummaryMode mode,
    const ExperimentConfig& config);

// Prints an R_k figure panel: one column per method, k = 1..kMaxK rows.
void PrintRkPanel(const std::string& title,
                  const std::vector<std::string>& labels,
                  const std::vector<std::array<double, kMaxK>>& curves);

}  // namespace fedsearch::bench

#endif  // FEDSEARCH_BENCH_HARNESS_EXPERIMENT_H_
