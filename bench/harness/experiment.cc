#include "harness/experiment.h"

#include <cstdio>
#include <cstdlib>
#include <map>

#include "fedsearch/sampling/fps_sampler.h"
#include "fedsearch/sampling/qbs_sampler.h"
#include "fedsearch/selection/rk_metric.h"

namespace fedsearch::bench {

const char* Name(DataSet dataset) {
  switch (dataset) {
    case DataSet::kTrec4:
      return "TREC4";
    case DataSet::kTrec6:
      return "TREC6";
    case DataSet::kWeb:
      return "Web";
  }
  return "?";
}

const char* Name(SamplerKind sampler) {
  return sampler == SamplerKind::kQbs ? "QBS" : "FPS";
}

const char* Name(SelectionMethod method) {
  switch (method) {
    case SelectionMethod::kPlain:
      return "Plain";
    case SelectionMethod::kShrinkage:
      return "Shrinkage";
    case SelectionMethod::kHierarchical:
      return "Hierarchical";
  }
  return "?";
}

ExperimentConfig ConfigFromEnv() {
  ExperimentConfig config;
  if (const char* scale = std::getenv("FEDSEARCH_SCALE")) {
    config.scale = std::atof(scale);
    if (config.scale <= 0.0) config.scale = 0.25;
  }
  if (const char* runs = std::getenv("FEDSEARCH_QBS_RUNS")) {
    const long value = std::atol(runs);
    if (value > 0) config.qbs_runs = static_cast<size_t>(value);
  }
  if (const char* seed = std::getenv("FEDSEARCH_SEED")) {
    config.seed = static_cast<uint64_t>(std::atoll(seed));
  }
  return config;
}

const corpus::Testbed& GetTestbed(DataSet dataset,
                                  const ExperimentConfig& config) {
  static std::map<std::pair<int, double>, std::unique_ptr<corpus::Testbed>>*
      cache = new std::map<std::pair<int, double>,
                           std::unique_ptr<corpus::Testbed>>();
  const auto key = std::make_pair(static_cast<int>(dataset), config.scale);
  auto it = cache->find(key);
  if (it != cache->end()) return *it->second;

  corpus::TestbedOptions options;
  switch (dataset) {
    case DataSet::kTrec4:
      options = corpus::Testbed::Trec4Options(config.scale);
      break;
    case DataSet::kTrec6:
      options = corpus::Testbed::Trec6Options(config.scale);
      break;
    case DataSet::kWeb:
      options = corpus::Testbed::WebOptions(config.scale);
      break;
  }
  std::fprintf(stderr, "[harness] building %s testbed (scale %.2f) ...\n",
               Name(dataset), config.scale);
  auto bed = std::make_unique<corpus::Testbed>(options);
  std::fprintf(stderr, "[harness]   %zu databases, %llu documents\n",
               bed->num_databases(),
               static_cast<unsigned long long>(bed->total_documents()));
  it = cache->emplace(key, std::move(bed)).first;
  return *it->second;
}

Federation SampleFederation(DataSet dataset, SamplerKind sampler,
                            bool frequency_estimation, size_t run_index,
                            const ExperimentConfig& config,
                            bool keep_documents) {
  const corpus::Testbed& bed = GetTestbed(dataset, config);
  Federation federation;
  federation.samples.reserve(bed.num_databases());
  federation.classifications.reserve(bed.num_databases());
  util::Rng rng(config.seed * 7919 + run_index * 104729 +
                static_cast<uint64_t>(sampler) * 31 +
                (frequency_estimation ? 17 : 0));

  if (sampler == SamplerKind::kQbs) {
    sampling::QbsOptions options;
    options.build.frequency_estimation = frequency_estimation;
    options.build.keep_documents = keep_documents;
    sampling::QbsSampler qbs(options,
                             corpus::BuildSamplerDictionary(bed.model(), 20));
    for (size_t i = 0; i < bed.num_databases(); ++i) {
      util::Rng db_rng = rng.Fork();
      federation.samples.push_back(qbs.Sample(bed.database(i), db_rng));
      // QBS relies on the directory classification (Section 5.2).
      federation.classifications.push_back(bed.directory_category_of(i));
    }
  } else {
    static std::map<std::pair<int, double>, sampling::ProbeRuleSet>* rules =
        new std::map<std::pair<int, double>, sampling::ProbeRuleSet>();
    const auto key = std::make_pair(static_cast<int>(dataset), config.scale);
    auto it = rules->find(key);
    if (it == rules->end()) {
      it = rules->emplace(key,
                          sampling::ProbeRuleSet::FromTopicModel(bed.model()))
               .first;
    }
    sampling::FpsOptions options;
    options.build.frequency_estimation = frequency_estimation;
    options.build.keep_documents = keep_documents;
    sampling::FpsSampler fps(options, &it->second);
    for (size_t i = 0; i < bed.num_databases(); ++i) {
      util::Rng db_rng = rng.Fork();
      federation.samples.push_back(fps.Sample(bed.database(i), db_rng));
      // FPS classifies the database itself during probing.
      federation.classifications.push_back(
          federation.samples.back().classification);
    }
  }
  return federation;
}

std::unique_ptr<core::Metasearcher> BuildMetasearcher(
    DataSet dataset, Federation federation, const ExperimentConfig& config,
    core::MetasearcherOptions options) {
  const corpus::Testbed& bed = GetTestbed(dataset, config);
  return std::make_unique<core::Metasearcher>(
      &bed.hierarchy(), std::move(federation.samples),
      std::move(federation.classifications), options);
}

void RunQualityTable(const std::string& title,
                     double (*pick)(const summary::SummaryQuality&),
                     const ExperimentConfig& config) {
  std::printf("%s\n", title.c_str());
  std::printf("%-8s %-9s %-10s %12s %12s\n", "Data Set", "Sampling",
              "Freq. Est.", "Shrink=Yes", "Shrink=No");
  for (DataSet dataset : {DataSet::kWeb, DataSet::kTrec4, DataSet::kTrec6}) {
    const corpus::Testbed& bed = GetTestbed(dataset, config);

    // Per-database true summaries, shared across configurations.
    std::vector<summary::ContentSummary> truths;
    truths.reserve(bed.num_databases());
    for (size_t i = 0; i < bed.num_databases(); ++i) {
      truths.push_back(
          summary::ContentSummary::FromIndex(bed.database(i).index()));
    }

    for (SamplerKind sampler : {SamplerKind::kQbs, SamplerKind::kFps}) {
      const size_t runs =
          sampler == SamplerKind::kQbs ? config.qbs_runs : size_t{1};
      for (bool freq_est : {false, true}) {
        double shrunk_total = 0.0;
        double plain_total = 0.0;
        size_t cells = 0;
        for (size_t run = 0; run < runs; ++run) {
          auto meta = BuildMetasearcher(
              dataset, SampleFederation(dataset, sampler, freq_est, run,
                                        config),
              config);
          for (size_t i = 0; i < bed.num_databases(); ++i) {
            const summary::ContentSummary trimmed =
                summary::ContentSummary::Materialize(meta->shrunk_summary(i),
                                                     /*trim=*/true);
            shrunk_total +=
                pick(summary::EvaluateSummary(trimmed, truths[i]));
            plain_total += pick(
                summary::EvaluateSummary(meta->plain_summary(i), truths[i]));
            ++cells;
          }
        }
        std::printf("%-8s %-9s %-10s %12.3f %12.3f\n", Name(dataset),
                    Name(sampler), freq_est ? "Yes" : "No",
                    shrunk_total / static_cast<double>(cells),
                    plain_total / static_cast<double>(cells));
        std::fflush(stdout);
      }
    }
  }
  std::printf("\n");
}

namespace {

// Shared R_k averaging loop; `rank` produces the ranking for one query and
// budget k.
template <typename RankFn>
std::array<double, kMaxK> AverageRkImpl(const corpus::Testbed& bed,
                                        RankFn&& rank) {
  std::array<double, kMaxK> totals{};
  size_t evaluated = 0;
  for (size_t qi = 0; qi < bed.queries().size(); ++qi) {
    const selection::Query query{
        bed.analyzer().Analyze(bed.queries()[qi].text)};
    std::vector<size_t> relevant(bed.num_databases());
    size_t total_relevant = 0;
    for (size_t d = 0; d < bed.num_databases(); ++d) {
      relevant[d] = bed.CountRelevant(qi, d);
      total_relevant += relevant[d];
    }
    if (total_relevant == 0) continue;  // R_k undefined for this query
    ++evaluated;
    rank(query, relevant, totals);
  }
  if (evaluated > 0) {
    for (double& t : totals) t /= static_cast<double>(evaluated);
  }
  return totals;
}

}  // namespace

std::array<double, kMaxK> AverageRkCurveForMode(
    DataSet dataset, const core::Metasearcher& meta,
    const selection::ScoringFunction& scorer, core::SummaryMode mode,
    const ExperimentConfig& config) {
  const corpus::Testbed& bed = GetTestbed(dataset, config);
  return AverageRkImpl(
      bed, [&](const selection::Query& query,
               const std::vector<size_t>& relevant,
               std::array<double, kMaxK>& totals) {
        const auto outcome = meta.SelectDatabases(query, scorer, mode);
        for (size_t k = 1; k <= kMaxK; ++k) {
          totals[k - 1] += selection::RkScore(outcome.ranking, relevant, k);
        }
      });
}

std::array<double, kMaxK> AverageRkCurve(
    DataSet dataset, const core::Metasearcher& meta,
    const selection::ScoringFunction& scorer, SelectionMethod method,
    const ExperimentConfig& config) {
  if (method == SelectionMethod::kHierarchical) {
    const corpus::Testbed& bed = GetTestbed(dataset, config);
    return AverageRkImpl(
        bed, [&](const selection::Query& query,
                 const std::vector<size_t>& relevant,
                 std::array<double, kMaxK>& totals) {
          for (size_t k = 1; k <= kMaxK; ++k) {
            const auto ranking = meta.SelectHierarchical(query, scorer, k);
            totals[k - 1] += selection::RkScore(ranking, relevant, k);
          }
        });
  }
  return AverageRkCurveForMode(dataset, meta, scorer,
                               method == SelectionMethod::kPlain
                                   ? core::SummaryMode::kPlain
                                   : core::SummaryMode::kAdaptiveShrinkage,
                               config);
}

void PrintRkPanel(const std::string& title,
                  const std::vector<std::string>& labels,
                  const std::vector<std::array<double, kMaxK>>& curves) {
  std::printf("%s\n", title.c_str());
  std::printf("%-4s", "k");
  for (const std::string& label : labels) {
    std::printf(" %16s", label.c_str());
  }
  std::printf("\n");
  for (size_t k = 1; k <= kMaxK; ++k) {
    std::printf("%-4zu", k);
    for (const auto& curve : curves) {
      std::printf(" %16.3f", curve[k - 1]);
    }
    std::printf("\n");
  }
  std::printf("\n");
  std::fflush(stdout);
}

}  // namespace fedsearch::bench
