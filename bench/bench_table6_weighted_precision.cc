// Reproduces Table 6: weighted precision wp of shrunk vs unshrunk content
// summaries (Section 6.1). Unshrunk summaries are exactly 1.0 by
// construction; shrinkage trades a small amount of precision for recall.

#include "harness/experiment.h"

int main() {
  using namespace fedsearch;
  bench::RunQualityTable(
      "Table 6: weighted precision wp",
      [](const summary::SummaryQuality& q) { return q.weighted_precision; },
      bench::ConfigFromEnv());
  return 0;
}
