// Ablation for Section 6.2's "Adaptive vs. Universal Application of
// Shrinkage": applying shrinkage to every (query, database) pair should
// help bGlOSS (no built-in smoothing) but hurt CORI and LM relative to the
// adaptive strategy of Figure 3.

#include <cstdio>

#include "fedsearch/selection/bgloss.h"
#include "fedsearch/selection/cori.h"
#include "fedsearch/selection/lm.h"
#include "harness/experiment.h"

using namespace fedsearch;

namespace {

double MeanOverK(const std::array<double, bench::kMaxK>& curve) {
  double total = 0.0;
  for (double v : curve) total += v;
  return total / static_cast<double>(bench::kMaxK);
}

}  // namespace

int main() {
  const bench::ExperimentConfig config = bench::ConfigFromEnv();
  const bench::DataSet dataset = bench::DataSet::kTrec4;
  auto meta = bench::BuildMetasearcher(
      dataset,
      bench::SampleFederation(dataset, bench::SamplerKind::kQbs,
                              /*frequency_estimation=*/true, 0, config),
      config);

  std::printf(
      "Ablation: adaptive vs universal shrinkage (TREC4, QBS; mean R_k over "
      "k=1..20)\n");
  std::printf("%-10s %10s %10s %10s\n", "Selection", "Plain", "Adaptive",
              "Universal");

  const selection::BglossScorer bgloss;
  const selection::CoriScorer cori;
  const selection::LmScorer lm;
  for (const selection::ScoringFunction* scorer :
       std::initializer_list<const selection::ScoringFunction*>{&bgloss,
                                                                &cori, &lm}) {
    const double plain = MeanOverK(bench::AverageRkCurveForMode(
        dataset, *meta, *scorer, core::SummaryMode::kPlain, config));
    const double adaptive = MeanOverK(bench::AverageRkCurveForMode(
        dataset, *meta, *scorer, core::SummaryMode::kAdaptiveShrinkage,
        config));
    const double universal = MeanOverK(bench::AverageRkCurveForMode(
        dataset, *meta, *scorer, core::SummaryMode::kUniversalShrinkage,
        config));
    std::printf("%-10s %10.3f %10.3f %10.3f\n",
                std::string(scorer->name()).c_str(), plain, adaptive,
                universal);
    std::fflush(stdout);
  }
  return 0;
}
