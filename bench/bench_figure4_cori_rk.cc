// Reproduces Figure 4: the R_k ratio for the CORI selection algorithm over
// the TREC4 and TREC6 data sets, k = 1..20, comparing the adaptive
// shrinkage strategy against plain (unshrunk) summaries and the
// hierarchical baseline of [17], for both QBS and FPS summaries
// (Section 6.2).

#include <string>

#include "fedsearch/selection/cori.h"
#include "harness/experiment.h"

using namespace fedsearch;

int main() {
  const bench::ExperimentConfig config = bench::ConfigFromEnv();
  const selection::CoriScorer cori;

  for (bench::DataSet dataset :
       {bench::DataSet::kTrec4, bench::DataSet::kTrec6}) {
    for (bench::SamplerKind sampler :
         {bench::SamplerKind::kQbs, bench::SamplerKind::kFps}) {
      auto meta = bench::BuildMetasearcher(
          dataset,
          bench::SampleFederation(dataset, sampler,
                                  /*frequency_estimation=*/true, 0, config),
          config);
      std::vector<std::string> labels;
      std::vector<std::array<double, bench::kMaxK>> curves;
      for (bench::SelectionMethod method :
           {bench::SelectionMethod::kShrinkage,
            bench::SelectionMethod::kHierarchical,
            bench::SelectionMethod::kPlain}) {
        labels.push_back(std::string(Name(sampler)) + "-" + Name(method));
        curves.push_back(
            bench::AverageRkCurve(dataset, *meta, cori, method, config));
      }
      bench::PrintRkPanel(std::string("Figure 4 (") + Name(dataset) + ", " +
                              Name(sampler) + "): R_k for CORI",
                          labels, curves);
    }
  }
  return 0;
}
