// SLO-style overload bench for the query broker: p99-at-offered-load.
//
// Drives the broker with deterministic open-loop Poisson arrivals at three
// offered loads — 0.5x, 1x, and 2x the sustainable full-quality throughput
// (workers / adaptive cost) — with a 5% slow-fault rate inflating request
// costs up to 8x, and reports the virtual-time outcome: goodput, admitted
// latency percentiles, and the shed / downgrade / expiry split.
//
// Every reported number lives on the broker's virtual clock, so the output
// is bit-identical across runs and machines; the bench enforces this by
// running each scenario twice with the same arrival seed and comparing the
// per-request accounts field by field. It also asserts the broker's
// robustness contract directly:
//   * every submitted request resolves (served / shed / expired; nothing
//     pending or cancelled),
//   * no admitted request's end-to-end latency exceeds the deadline,
//   * at 2x overload the broker downgrades before it sheds
//     (downgrades > 0, sheds < downgrades).
//
// Usage:
//   bench_broker [--smoke] [--json out.json] [--trace-out trace.json]
//                [--statusz]
//
// --smoke shrinks the request count for CI; --json writes the
// schema-versioned BENCH report consumed by tools/check_bench_regression.py.
// --trace-out enables request-scoped tracing and writes a Chrome-trace/
// Perfetto JSON timeline (load in chrome://tracing or feed to
// tools/analyze_timeline.py). --statusz prints a one-shot introspection
// dump (broker statusz captured at the end of the last scenario, plus the
// global metrics registry) to stdout after the scenarios.
// The worker count is pinned (not hardware-derived): the virtual schedule —
// and therefore the committed baseline — depends on it.
// FEDSEARCH_SCALE / FEDSEARCH_SEED apply as in every bench.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "fedsearch/broker/load_generator.h"
#include "fedsearch/broker/query_broker.h"
#include "fedsearch/selection/cori.h"
#include "fedsearch/util/metrics.h"
#include "fedsearch/util/trace.h"
#include "harness/experiment.h"
#include "harness/report.h"

using namespace fedsearch;

namespace {

// Pinned broker shape. Changing any of these changes the virtual schedule,
// which is fine — regenerate the baseline alongside.
constexpr size_t kWorkers = 4;
constexpr double kDeadlineMs = 100.0;
constexpr double kSlowRate = 0.05;
constexpr double kSlowFactor = 8.0;

struct RunOutput {
  std::vector<broker::RequestResult> results;
  broker::BrokerStats stats;
};

// Runs one scenario to completion. When `statusz_json` is non-null it
// receives the broker's introspection snapshot taken after Drain (queue
// empty, SLO window and admission EWMA in their end-of-run state) but
// before Shutdown tears the workers down.
RunOutput RunScenario(const core::Metasearcher& meta,
                      const selection::ScoringFunction& scorer,
                      const std::vector<selection::Query>& queries,
                      const broker::BrokerOptions& broker_options,
                      const broker::OpenLoopOptions& load_options,
                      size_t num_requests,
                      std::string* statusz_json = nullptr) {
  broker::QueryBroker broker(&meta, &scorer, broker_options);
  broker::OpenLoopGenerator generator(load_options, queries.size());
  for (size_t i = 0; i < num_requests; ++i) {
    const broker::Arrival arrival = generator.Next();
    broker.Submit(queries[arrival.query_index], arrival.arrival_ms,
                  arrival.service_inflation);
  }
  broker.Drain();
  RunOutput out;
  out.stats = broker.ComputeStats();
  out.results = broker.results();
  if (statusz_json != nullptr) *statusz_json = broker.StatuszJson(2);
  broker.Shutdown();
  return out;
}

bool BitIdentical(const broker::RequestResult& a,
                  const broker::RequestResult& b) {
  return a.disposition == b.disposition && a.downgraded == b.downgraded &&
         a.arrival_ms == b.arrival_ms && a.start_ms == b.start_ms &&
         a.finish_ms == b.finish_ms && a.queue_wait_ms == b.queue_wait_ms &&
         a.service_ms == b.service_ms &&
         a.predicted_cost_ms == b.predicted_cost_ms &&
         a.service_inflation == b.service_inflation &&
         a.evaluations_completed == b.evaluations_completed &&
         a.ranking_hash == b.ranking_hash;
}

// Nearest-rank percentile over an already-sorted sample.
double Percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const double rank = std::ceil(p / 100.0 * static_cast<double>(sorted.size()));
  size_t index = rank <= 1.0 ? 0 : static_cast<size_t>(rank) - 1;
  if (index >= sorted.size()) index = sorted.size() - 1;
  return sorted[index];
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  bool statusz = false;
  std::string json_path;
  std::string trace_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--statusz") == 0) {
      statusz = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (std::strncmp(argv[i], "--trace-out=", 12) == 0) {
      trace_path = argv[i] + 12;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--smoke] [--json out.json] "
                   "[--trace-out trace.json] [--statusz]\n",
                   argv[0]);
      return 2;
    }
  }
  const size_t num_requests = smoke ? 240 : 600;

  if (!trace_path.empty()) util::Tracer::Global().set_enabled(true);

  const bench::ExperimentConfig config = bench::ConfigFromEnv();
  const bench::DataSet dataset = bench::DataSet::kTrec4;
  const corpus::Testbed& bed = bench::GetTestbed(dataset, config);

  std::vector<selection::Query> queries;
  for (const corpus::TestQuery& tq : bed.queries()) {
    queries.push_back(selection::Query{bed.analyzer().Analyze(tq.text)});
  }

  // The broker owns the parallelism; the metasearcher serves serially.
  core::MetasearcherOptions meta_options;
  meta_options.num_threads = 1;
  auto meta = bench::BuildMetasearcher(
      dataset,
      bench::SampleFederation(dataset, bench::SamplerKind::kQbs,
                              /*frequency_estimation=*/true, 0, config),
      config, meta_options);
  const selection::CoriScorer cori;

  broker::BrokerOptions broker_options;
  broker_options.num_workers = kWorkers;
  broker_options.deadline_ms = kDeadlineMs;

  // Sustainable full-quality throughput from the cost model: with every
  // request served at full quality, each worker finishes one request per
  // adaptive_cost_ms. 2x this rate is genuine overload — the broker must
  // shed quality (and eventually requests) or miss deadlines.
  const util::Deadline::Costs& costs = broker_options.costs;
  const size_t n = meta->num_databases();
  const size_t n_eval = n - meta->num_degraded();
  const double adaptive_cost_ms = static_cast<double>(n_eval) *
                                      costs.adaptive_evaluation_ms +
                                  static_cast<double>(n) * costs.score_ms;
  const double sustainable_qps =
      static_cast<double>(kWorkers) * 1000.0 / adaptive_cost_ms;

  std::printf("Broker overload bench: %zu databases, %zu queries, "
              "%zu requests/scenario, %zu workers, deadline %.0f ms\n",
              n, queries.size(), num_requests, kWorkers, kDeadlineMs);
  std::printf("Cost model: adaptive %.2f ms/query -> sustainable %.1f qps\n\n",
              adaptive_cost_ms, sustainable_qps);

  bench::BenchReport report("broker");
  report.SetConfig(config);
  report.AddConfig("workers", static_cast<double>(kWorkers));
  report.AddConfig("deadline_ms", kDeadlineMs);
  report.AddConfig("requests", static_cast<double>(num_requests));
  report.AddConfig("slow_rate", kSlowRate);
  report.AddConfig("slow_factor", kSlowFactor);
  report.AddConfig("databases", static_cast<double>(n));
  report.AddConfig("adaptive_cost_ms", adaptive_cost_ms);
  report.AddConfig("sustainable_qps", sustainable_qps);
  // Wall-clock histograms and pool counters vary run to run; the scenario
  // values are all virtual-time, and the report must diff clean.
  report.set_embed_metrics(false);

  // Filled from the last (most loaded) scenario's first run; printed by
  // --statusz after the loop.
  std::string statusz_json;

  const double load_factors[] = {0.5, 1.0, 2.0};
  for (size_t s = 0; s < std::size(load_factors); ++s) {
    const double factor = load_factors[s];
    broker::OpenLoopOptions load_options;
    load_options.arrival_rate_qps = factor * sustainable_qps;
    load_options.seed = config.seed * 1000003ULL + s;
    load_options.slow_rate = kSlowRate;
    load_options.slow_factor = kSlowFactor;

    const bool last = s + 1 == std::size(load_factors);
    const RunOutput run =
        RunScenario(*meta, cori, queries, broker_options, load_options,
                    num_requests, last ? &statusz_json : nullptr);
    const RunOutput rerun = RunScenario(*meta, cori, queries, broker_options,
                                        load_options, num_requests);
    if (run.results.size() != rerun.results.size()) {
      std::fprintf(stderr, "FAIL: %.1fx rerun submitted a different count\n",
                   factor);
      return 1;
    }
    for (size_t i = 0; i < run.results.size(); ++i) {
      if (!BitIdentical(run.results[i], rerun.results[i])) {
        std::fprintf(stderr,
                     "FAIL: %.1fx request %zu differs between identically "
                     "seeded runs\n",
                     factor, i);
        return 1;
      }
    }

    const broker::BrokerStats& stats = run.stats;
    // Every request resolves, and nothing was left for Shutdown to cancel.
    if (stats.resolved() != num_requests || stats.cancelled != 0) {
      std::fprintf(stderr,
                   "FAIL: %.1fx resolved %zu of %zu (%zu cancelled)\n",
                   factor, stats.resolved(), num_requests, stats.cancelled);
      return 1;
    }

    size_t downgrades = 0;
    double max_admitted_e2e_ms = 0.0;
    std::vector<double> admitted_e2e_ms;
    double makespan_ms = 0.0;
    // Client-observed latency attribution. For every admitted request the
    // virtual account satisfies queue + service = e2e exactly (expiries
    // clamp queue at the deadline), so these buckets partition the total
    // client-observed wall: time queued, service that produced an answer,
    // and service wasted on requests that expired anyway.
    double e2e_total_ms = 0.0;
    double queue_ms = 0.0;
    double service_useful_ms = 0.0;
    double service_wasted_ms = 0.0;
    double e2e_by_disposition_ms[8] = {};
    size_t count_by_disposition[8] = {};
    for (const broker::RequestResult& r : run.results) {
      makespan_ms = std::max(makespan_ms, r.finish_ms);
      if (r.downgraded) ++downgrades;
      const double e2e = r.e2e_ms();
      e2e_total_ms += e2e;
      queue_ms += std::min(r.queue_wait_ms, e2e);
      (r.served() ? service_useful_ms : service_wasted_ms) += r.service_ms;
      const size_t d = static_cast<size_t>(r.disposition);
      e2e_by_disposition_ms[d] += e2e;
      ++count_by_disposition[d];
      if (!r.admitted()) continue;
      admitted_e2e_ms.push_back(e2e);
      max_admitted_e2e_ms = std::max(max_admitted_e2e_ms, e2e);
    }
    // Admitted latency is bounded by the deadline by construction (the
    // client's timeout fires); virtual time makes the bound exact.
    if (max_admitted_e2e_ms > kDeadlineMs + 1e-6) {
      std::fprintf(stderr, "FAIL: %.1fx admitted e2e %.3f ms > deadline\n",
                   factor, max_admitted_e2e_ms);
      return 1;
    }
    // Under overload the broker must shed quality before requests.
    if (factor >= 2.0 &&
        (downgrades == 0 || stats.shed() >= downgrades)) {
      std::fprintf(stderr,
                   "FAIL: %.1fx downgrades %zu, sheds %zu "
                   "(want downgrades > 0 and sheds < downgrades)\n",
                   factor, downgrades, stats.shed());
      return 1;
    }

    std::sort(admitted_e2e_ms.begin(), admitted_e2e_ms.end());
    const double goodput_qps =
        makespan_ms > 0.0
            ? static_cast<double>(stats.served()) * 1000.0 / makespan_ms
            : 0.0;
    const double requests_d = static_cast<double>(num_requests);

    std::printf("%.1fx (%6.1f qps offered): goodput %6.1f qps  "
                "p99 %6.2f ms  served %zu (%zu degraded)  shed %zu  "
                "expired %zu  [bit-identical rerun]\n",
                factor, load_options.arrival_rate_qps, goodput_qps,
                Percentile(admitted_e2e_ms, 99.0), stats.served(),
                stats.served_degraded, stats.shed(), stats.expired());
    std::fflush(stdout);

    char name[32];
    std::snprintf(name, sizeof(name), "load_%.1fx", factor);
    bench::BenchReport::Scenario& scenario = report.AddScenario(name);
    scenario.Add("qps_offered", load_options.arrival_rate_qps);
    scenario.Add("qps_goodput", goodput_qps);
    scenario.Add("p50_us", Percentile(admitted_e2e_ms, 50.0) * 1000.0);
    scenario.Add("p95_us", Percentile(admitted_e2e_ms, 95.0) * 1000.0);
    scenario.Add("p99_us", Percentile(admitted_e2e_ms, 99.0) * 1000.0);
    scenario.Add("max_admitted_e2e_us", max_admitted_e2e_ms * 1000.0);
    scenario.Add("served_full", static_cast<double>(stats.served_full));
    scenario.Add("served_degraded",
                 static_cast<double>(stats.served_degraded));
    scenario.Add("shed_queue_full",
                 static_cast<double>(stats.shed_queue_full));
    scenario.Add("shed_predicted_miss",
                 static_cast<double>(stats.shed_predicted_miss));
    scenario.Add("expired_in_queue",
                 static_cast<double>(stats.expired_in_queue));
    scenario.Add("expired_executing",
                 static_cast<double>(stats.expired_executing));
    scenario.Add("downgrade_rate", static_cast<double>(downgrades) /
                                       requests_d);
    scenario.Add("shed_rate", static_cast<double>(stats.shed()) / requests_d);
    scenario.Add("expired_rate",
                 static_cast<double>(stats.expired()) / requests_d);
    scenario.Add("ewma_service_ms", stats.ewma_service_ms);

    // Informational (wall_ prefix is ungated by the regression checker):
    // SLO burn rate over the final window and the latency-attribution
    // split. All still virtual-time, hence deterministic.
    scenario.Add("wall_slo_good_fraction", stats.slo_good_fraction);
    scenario.Add("wall_slo_burn_rate", stats.slo_burn_rate);
    const double e2e_denom = e2e_total_ms > 0.0 ? e2e_total_ms : 1.0;
    scenario.Add("wall_queue_share", queue_ms / e2e_denom);
    scenario.Add("wall_service_share", service_useful_ms / e2e_denom);
    scenario.Add("wall_wasted_share", service_wasted_ms / e2e_denom);
    for (const broker::Disposition d :
         {broker::Disposition::kServedFull,
          broker::Disposition::kServedDegraded,
          broker::Disposition::kExpiredInQueue,
          broker::Disposition::kExpiredExecuting}) {
      const size_t i = static_cast<size_t>(d);
      if (count_by_disposition[i] == 0) continue;
      char key[64];
      std::snprintf(key, sizeof(key), "wall_mean_e2e_%s_us",
                    broker::DispositionName(d));
      scenario.Add(key, e2e_by_disposition_ms[i] * 1000.0 /
                            static_cast<double>(count_by_disposition[i]));
    }
  }

  if (statusz) {
    // One-shot introspection dump: the broker snapshot from the end of the
    // 2x scenario plus the global metrics registry.
    std::printf("{\n  \"broker\": %s,\n  \"metrics\": %s\n}\n",
                statusz_json.c_str(),
                util::GlobalMetrics().ToJson(2).c_str());
  }

  if (!trace_path.empty()) {
    const std::string trace_json = util::Tracer::Global().ToPerfettoJson(1);
    std::FILE* f = std::fopen(trace_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "FAIL: cannot open %s\n", trace_path.c_str());
      return 1;
    }
    std::fwrite(trace_json.data(), 1, trace_json.size(), f);
    std::fclose(f);
    std::printf("\nWrote Perfetto timeline to %s (%zu spans, %llu dropped)\n",
                trace_path.c_str(), util::Tracer::Global().snapshot().size(),
                static_cast<unsigned long long>(
                    util::Tracer::Global().dropped()));
  }

  if (!json_path.empty() && !report.WriteFile(json_path)) return 1;
  return 0;
}
