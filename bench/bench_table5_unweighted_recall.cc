// Reproduces Table 5: unweighted recall ur (vocabulary coverage) of shrunk
// vs unshrunk content summaries (Section 6.1).

#include "harness/experiment.h"

int main() {
  using namespace fedsearch;
  bench::RunQualityTable(
      "Table 5: unweighted recall ur",
      [](const summary::SummaryQuality& q) { return q.unweighted_recall; },
      bench::ConfigFromEnv());
  return 0;
}
