// Microbenchmarks (google-benchmark) for the performance-critical kernels:
// index search, EM mixture-weight fitting, shrunk-summary lookups, the
// document-frequency posterior, and QBS sampling throughput.
//
// In addition to the standard google-benchmark flags, the custom main
// accepts:
//   --smoke          one fast repetition per benchmark (CI sanity check)
//   --json out.json  write a schema-versioned BENCH report (harness/report.h)

#include <benchmark/benchmark.h>

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "fedsearch/core/adaptive.h"
#include "fedsearch/core/metasearcher.h"
#include "fedsearch/core/posterior_cache.h"
#include "fedsearch/corpus/testbed.h"
#include "fedsearch/sampling/qbs_sampler.h"
#include "fedsearch/selection/cori.h"
#include "harness/report.h"

namespace fedsearch {
namespace {

const corpus::Testbed& MicroTestbed() {
  static const corpus::Testbed* bed = [] {
    corpus::TestbedOptions o = corpus::Testbed::Trec4Options(0.2);
    o.num_databases = 20;
    o.num_queries = 10;
    return new corpus::Testbed(o);
  }();
  return *bed;
}

const core::Metasearcher& MicroMetasearcher() {
  static const core::Metasearcher* meta = [] {
    const corpus::Testbed& bed = MicroTestbed();
    sampling::QbsOptions options;
    sampling::QbsSampler sampler(
        options, corpus::BuildSamplerDictionary(bed.model(), 10));
    std::vector<sampling::SampleResult> samples;
    std::vector<corpus::CategoryId> classifications;
    util::Rng rng(4242);
    for (size_t i = 0; i < bed.num_databases(); ++i) {
      util::Rng db_rng = rng.Fork();
      samples.push_back(sampler.Sample(bed.database(i), db_rng));
      classifications.push_back(bed.category_of(i));
    }
    return new core::Metasearcher(&bed.hierarchy(), std::move(samples),
                                  std::move(classifications));
  }();
  return *meta;
}

void BM_IndexConjunctiveQuery(benchmark::State& state) {
  const corpus::Testbed& bed = MicroTestbed();
  const index::TextDatabase& db = bed.database(0);
  const std::string query =
      bed.queries()[0].words[0] + " " + bed.queries()[0].words[1];
  for (auto _ : state) {
    benchmark::DoNotOptimize(db.Query(query, 4));
  }
}
BENCHMARK(BM_IndexConjunctiveQuery);

void BM_IndexSingleWordMatchCount(benchmark::State& state) {
  const corpus::Testbed& bed = MicroTestbed();
  const index::TextDatabase& db = bed.database(0);
  const std::string query = bed.queries()[0].words[0];
  for (auto _ : state) {
    benchmark::DoNotOptimize(db.Query(query, 0));
  }
}
BENCHMARK(BM_IndexSingleWordMatchCount);

void BM_QbsSampleDatabase(benchmark::State& state) {
  const corpus::Testbed& bed = MicroTestbed();
  sampling::QbsOptions options;
  options.target_documents = static_cast<size_t>(state.range(0));
  sampling::QbsSampler sampler(
      options, corpus::BuildSamplerDictionary(bed.model(), 10));
  uint64_t seed = 1;
  for (auto _ : state) {
    util::Rng rng(seed++);
    benchmark::DoNotOptimize(sampler.Sample(bed.database(1), rng));
  }
}
BENCHMARK(BM_QbsSampleDatabase)->Arg(50)->Arg(150)->Arg(300);

void BM_EmMixtureFit(benchmark::State& state) {
  const core::Metasearcher& meta = MicroMetasearcher();
  const auto& hs = meta.hierarchy_summaries();
  const corpus::TopicHierarchy& h = MicroTestbed().hierarchy();
  const auto path = h.PathFromRoot(meta.classification(0));
  std::vector<const summary::SummaryView*> categories;
  for (size_t i = 0; i < path.size(); ++i) {
    if (i + 1 < path.size()) {
      categories.push_back(&hs.ExclusiveOfChild(path[i], path[i + 1]));
    } else {
      categories.push_back(&hs.ExclusiveOfDatabase(path[i], 0));
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::FitMixtureWeights(
        meta.plain_summary(0), categories, hs.uniform_probability(),
        meta.sample(0).sample_size));
  }
}
BENCHMARK(BM_EmMixtureFit);

void BM_ShrunkSummaryLookup(benchmark::State& state) {
  const core::Metasearcher& meta = MicroMetasearcher();
  const core::ShrunkSummary& shrunk = meta.shrunk_summary(0);
  const std::string& word = MicroTestbed().queries()[0].words[0];
  for (auto _ : state) {
    benchmark::DoNotOptimize(shrunk.MixtureProbDoc(word));
  }
}
BENCHMARK(BM_ShrunkSummaryLookup);

void BM_DocFrequencyPosteriorSample(benchmark::State& state) {
  core::DocFrequencyPosterior posterior(/*sample_df=*/3, /*sample_size=*/300,
                                        /*db_size=*/50000, /*gamma=*/-2.0,
                                        /*grid_points=*/64);
  util::Rng rng(9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(posterior.Sample(rng));
  }
}
BENCHMARK(BM_DocFrequencyPosteriorSample);

// --- Adaptive fast-path kernels (DESIGN.md §6g) ---
// Three stages, benchmarked separately so a regression pinpoints itself:
// the per-database basis build (once per shard), the per-word flat weight
// grid built from a shared basis (once per (database, sample_df) cache
// miss), and the Monte-Carlo delta evaluation itself (per query×database).

void BM_PosteriorBasisBuild(benchmark::State& state) {
  for (auto _ : state) {
    core::PosteriorGridBasis basis(/*db_size=*/50000, /*gamma=*/-2.0,
                                   /*grid_points=*/64);
    benchmark::DoNotOptimize(basis.support().data());
  }
}
BENCHMARK(BM_PosteriorBasisBuild);

void BM_PosteriorWeightsFromBasis(benchmark::State& state) {
  const auto basis = std::make_shared<const core::PosteriorGridBasis>(
      /*db_size=*/50000, /*gamma=*/-2.0, /*grid_points=*/64);
  for (auto _ : state) {
    core::DocFrequencyPosterior posterior(basis, /*sample_df=*/3,
                                          /*sample_size=*/300);
    benchmark::DoNotOptimize(posterior.weights().data());
  }
}
BENCHMARK(BM_PosteriorWeightsFromBasis);

void BM_AdaptiveDeltaEvaluateFixedDraws(benchmark::State& state) {
  // One delta-path evaluation at a pinned draw count (no convergence
  // early-exit): table build + 400 draws × |query| inverse-CDF samples +
  // folds. Per-draw cost ≈ cpu_time / 400.
  const core::Metasearcher& meta = MicroMetasearcher();
  const corpus::Testbed& bed = MicroTestbed();
  const selection::Query query{bed.analyzer().Analyze(bed.queries()[0].text)};
  selection::CoriScorer cori;
  selection::ScoringContext context;
  for (size_t i = 0; i < meta.num_databases(); ++i) {
    context.ranked_summaries.push_back(&meta.plain_summary(i));
  }
  context.global_summary = &meta.global_summary();
  selection::PrepareContextForQuery(query, context);
  core::AdaptiveOptions options;
  options.min_draws = 400;
  options.max_draws = 400;
  options.require_mixed_evidence = false;
  core::AdaptiveSummarySelector selector(options);
  core::PosteriorCache cache(meta.num_databases());
  uint64_t seed = 1;
  for (auto _ : state) {
    util::Rng rng(seed++);
    benchmark::DoNotOptimize(selector.Evaluate(query, meta.sample(0), cori,
                                               context, rng, &cache, 0));
  }
}
BENCHMARK(BM_AdaptiveDeltaEvaluateFixedDraws);

void BM_AdaptiveDecision(benchmark::State& state) {
  const core::Metasearcher& meta = MicroMetasearcher();
  const corpus::Testbed& bed = MicroTestbed();
  const selection::Query query{bed.analyzer().Analyze(bed.queries()[0].text)};
  selection::CoriScorer cori;
  selection::ScoringContext context;
  for (size_t i = 0; i < meta.num_databases(); ++i) {
    context.ranked_summaries.push_back(&meta.plain_summary(i));
  }
  context.global_summary = &meta.global_summary();
  selection::PrepareContextForQuery(query, context);
  core::AdaptiveSummarySelector selector;
  uint64_t seed = 1;
  for (auto _ : state) {
    util::Rng rng(seed++);
    benchmark::DoNotOptimize(
        selector.Evaluate(query, meta.sample(0), cori, context, rng));
  }
}
BENCHMARK(BM_AdaptiveDecision);

void BM_SelectDatabasesCori(benchmark::State& state) {
  const core::Metasearcher& meta = MicroMetasearcher();
  const corpus::Testbed& bed = MicroTestbed();
  const selection::Query query{bed.analyzer().Analyze(bed.queries()[0].text)};
  selection::CoriScorer cori;
  const core::SummaryMode mode = state.range(0) == 0
                                     ? core::SummaryMode::kPlain
                                     : core::SummaryMode::kAdaptiveShrinkage;
  for (auto _ : state) {
    benchmark::DoNotOptimize(meta.SelectDatabases(query, cori, mode));
  }
}
BENCHMARK(BM_SelectDatabasesCori)->Arg(0)->Arg(1);

// Console output plus a machine-readable tally of every finished run:
// (name, per-iteration real/cpu time in ns, iteration count).
class CollectingReporter : public benchmark::ConsoleReporter {
 public:
  struct Result {
    std::string name;
    double real_ns = 0.0;
    double cpu_ns = 0.0;
    double iterations = 0.0;
  };

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.error_occurred || run.run_type == Run::RT_Aggregate) continue;
      Result r;
      r.name = run.benchmark_name();
      const double to_ns =
          benchmark::GetTimeUnitMultiplier(run.time_unit) > 0
              ? 1e9 / benchmark::GetTimeUnitMultiplier(run.time_unit)
              : 1.0;
      r.real_ns = run.GetAdjustedRealTime() * to_ns;
      r.cpu_ns = run.GetAdjustedCPUTime() * to_ns;
      r.iterations = static_cast<double>(run.iterations);
      results_.push_back(std::move(r));
    }
    ConsoleReporter::ReportRuns(runs);
  }

  const std::vector<Result>& results() const { return results_; }

 private:
  std::vector<Result> results_;
};

}  // namespace
}  // namespace fedsearch

int main(int argc, char** argv) {
  std::string json_path;
  bool smoke = false;
  std::vector<char*> args;
  args.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      args.push_back(argv[i]);
    }
  }
  // benchmark 1.7 takes the min time as a plain float (no "s" suffix).
  char min_time_flag[] = "--benchmark_min_time=0.01";
  if (smoke) args.push_back(min_time_flag);
  int args_count = static_cast<int>(args.size());
  benchmark::Initialize(&args_count, args.data());
  if (benchmark::ReportUnrecognizedArguments(args_count, args.data())) {
    return 1;
  }

  fedsearch::CollectingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();

  if (!json_path.empty()) {
    fedsearch::bench::BenchReport report("micro");
    report.SetConfig(fedsearch::bench::ConfigFromEnv());
    report.AddConfig("smoke", smoke ? 1.0 : 0.0);
    for (const auto& result : reporter.results()) {
      auto& scenario = report.AddScenario(result.name)
                           .Add("real_time_ns", result.real_ns)
                           .Add("cpu_time_ns", result.cpu_ns)
                           .Add("iterations", result.iterations);
      // Operations per second from CPU time: the "qps" prefix is what
      // opts a scenario into the perf-regression gate
      // (tools/check_bench_regression.py), so committing a micro baseline
      // turns these kernels into gated perf contracts.
      if (result.cpu_ns > 0.0) scenario.Add("qps_op", 1e9 / result.cpu_ns);
    }
    if (!report.WriteFile(json_path)) return 1;
  }
  return 0;
}
