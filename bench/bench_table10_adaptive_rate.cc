// Reproduces Table 10: the percentage of (query, database) pairs for which
// the adaptive algorithm of Figure 3 chose the shrunk content summary, per
// data set, sampler, and base selection algorithm (Section 6.2).

#include <cstdio>

#include "fedsearch/selection/bgloss.h"
#include "fedsearch/selection/cori.h"
#include "fedsearch/selection/lm.h"
#include "harness/experiment.h"

using namespace fedsearch;

int main() {
  const bench::ExperimentConfig config = bench::ConfigFromEnv();
  std::printf(
      "Table 10: %% of (query, database) pairs with shrinkage applied\n");
  std::printf("%-8s %-9s %-10s %12s\n", "Data Set", "Sampling", "Selection",
              "Shrinkage");

  const selection::BglossScorer bgloss;
  const selection::CoriScorer cori;
  const selection::LmScorer lm;

  for (bench::DataSet dataset :
       {bench::DataSet::kTrec4, bench::DataSet::kTrec6}) {
    const corpus::Testbed& bed = bench::GetTestbed(dataset, config);
    for (bench::SamplerKind sampler :
         {bench::SamplerKind::kFps, bench::SamplerKind::kQbs}) {
      auto meta = bench::BuildMetasearcher(
          dataset,
          bench::SampleFederation(dataset, sampler,
                                  /*frequency_estimation=*/true, 0, config),
          config);
      for (const selection::ScoringFunction* scorer :
           std::initializer_list<const selection::ScoringFunction*>{
               &bgloss, &cori, &lm}) {
        size_t applied = 0;
        size_t considered = 0;
        for (const corpus::TestQuery& tq : bed.queries()) {
          const selection::Query q{bed.analyzer().Analyze(tq.text)};
          const auto outcome = meta->SelectDatabases(
              q, *scorer, core::SummaryMode::kAdaptiveShrinkage);
          applied += outcome.shrinkage_applied;
          considered += outcome.databases_considered;
        }
        std::printf("%-8s %-9s %-10s %11.2f%%\n", Name(dataset),
                    Name(sampler), std::string(scorer->name()).c_str(),
                    considered > 0
                        ? 100.0 * static_cast<double>(applied) /
                              static_cast<double>(considered)
                        : 0.0);
        std::fflush(stdout);
      }
    }
  }
  return 0;
}
