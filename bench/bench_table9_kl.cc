// Reproduces Table 9: KL-divergence between the approximate and true
// content-summary token distributions (Section 6.1). Lower is better.

#include "harness/experiment.h"

int main() {
  using namespace fedsearch;
  bench::RunQualityTable(
      "Table 9: KL-divergence (lower is better)",
      [](const summary::SummaryQuality& q) { return q.kl_divergence; },
      bench::ConfigFromEnv());
  return 0;
}
