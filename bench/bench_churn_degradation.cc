// Live-churn degradation bench: R_k and serving latency vs refresh rate.
//
// The corpus churns under live traffic (ChurnTestbed: static / slow / fast
// drift classes, fast databases migrating toward a sibling topic) while a
// LiveMetasearcher serves through the query broker. Each scenario re-probes
// a fixed budget of databases on a fixed refresh interval and publishes the
// refreshed summaries as a new epoch; selection quality is then measured
// against the CURRENT corpus, so stale summaries pay for what the corpus
// did since their probe.
//
// Scenarios:
//   racing_every1/2/4 — explore/exploit racing scheduler, refresh every
//                       1/2/4 churn epochs (same per-refresh probe budget)
//   round_robin_every1 — uniform rotation at the every-1 budget (the
//                       control the racing policy must beat)
//   never             — epoch-0 summaries forever (maximal staleness)
//
// The bench asserts the tentpole claims directly and exits non-zero when
// they fail:
//   * staleness degrades selection monotonically: mean R_k@5 ordered
//     every1 >= every2 >= every4 >= never,
//   * the racing policy beats round-robin at equal probe budget,
//   * every scenario is bit-identical across a rerun (request accounts,
//     per-epoch R_k, and served-epoch attribution),
//   * every submitted request resolves and admitted latency respects the
//     deadline.
//
// Serving latency: each refresh is followed by a deterministic cold window
// (the first kColdRequests of the post-refresh slice carry a fixed service
// inflation, modeling cache-cold execution against the new epoch), so p95
// responds to the refresh rate — freshness is bought with tail latency.
// All latency numbers are virtual-time (see QueryBroker), hence exactly
// reproducible; posterior-cache counters depend on real worker timing and
// are reported under the ungated wall_ prefix only.
//
// Usage: bench_churn_degradation [--smoke] [--json out.json]
// FEDSEARCH_SCALE is ignored (the churn testbed is pinned); FEDSEARCH_SEED
// applies as in every bench.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "fedsearch/broker/load_generator.h"
#include "fedsearch/broker/query_broker.h"
#include "fedsearch/core/live_metasearcher.h"
#include "fedsearch/corpus/churn.h"
#include "fedsearch/sampling/qbs_sampler.h"
#include "fedsearch/sampling/refresh_scheduler.h"
#include "fedsearch/selection/cori.h"
#include "fedsearch/selection/rk_metric.h"
#include "fedsearch/summary/metrics.h"
#include "harness/experiment.h"
#include "harness/report.h"

using namespace fedsearch;

namespace {

// Pinned shape: the committed baseline depends on every one of these.
constexpr size_t kDatabases = 24;
constexpr size_t kGeneratedQueries = 240;  // pool the workload is drawn from
constexpr size_t kMaxWorkloadQueries = 12;
constexpr size_t kWorkers = 4;
constexpr double kDeadlineMs = 100.0;
constexpr double kLoadFactor = 0.7;     // offered / sustainable
// Scarce on purpose: far fewer probe slots per refresh than there are
// fast-drifting databases. Keeping every migrant fresh is impossible, so
// WHERE the budget goes is what separates the policies — round-robin
// needs kDatabases/kProbeBudget = 8 epochs (the whole smoke horizon) to
// revisit a database, while racing concentrates on the handful it has
// learned drift fast and revisits each of those every ~2-3 epochs.
constexpr size_t kProbeBudget = 3;      // databases re-probed per refresh
constexpr size_t kColdRequests = 12;    // cold window after each refresh
constexpr double kColdFactor = 4.0;     // service inflation when cold
constexpr size_t kRkK = 1;

struct ScenarioSpec {
  const char* name;
  sampling::RefreshPolicy policy;
  size_t refresh_interval;  // epochs between refreshes; 0 = never refresh
};

struct ScenarioResult {
  std::vector<broker::RequestResult> results;
  broker::BrokerStats stats;
  std::vector<double> rk_per_epoch;
  double mean_rk = 0.0;    // all epochs
  double steady_rk = 0.0;  // second half — drift has accumulated by then
  size_t probes = 0;
  core::PosteriorCache::Stats cache;  // wall_: worker-timing dependent
};

// Probe-time re-classification: the dominant generating topic of the
// database's CURRENT documents (smallest category id wins ties). Without
// this, a refreshed sample of a migrated database is shrunk toward its
// stale category and pollutes that category's hierarchy summary — fresh
// data scored under a stale label can be worse than stale-but-consistent
// data.
corpus::CategoryId MajorityTopic(const std::vector<corpus::CategoryId>& topics) {
  std::map<corpus::CategoryId, size_t> counts;
  for (corpus::CategoryId t : topics) ++counts[t];
  corpus::CategoryId best = topics.front();
  size_t best_count = 0;
  for (const auto& [topic, count] : counts) {
    if (count > best_count) {
      best = topic;
      best_count = count;
    }
  }
  return best;
}

// Aggressive-but-plausible drift: a third of the federation migrates fast
// enough that epoch-0 summaries are badly wrong within a few epochs; a
// third never changes (re-probing it is pure waste — what the racing
// policy should learn to avoid). Pure function of the config seed, so
// every scenario (and the workload selection in main) sees the same drift
// classes and migration targets.
corpus::ChurnOptions BenchChurnOptions(uint64_t seed) {
  corpus::ChurnOptions o;
  o.seed = seed * 2654435761ULL + 0xC0D1CE5ULL;
  o.static_fraction = 0.3;
  o.fast_fraction = 0.3;
  // Slow drift is muted to near-static: the point of the bench is that a
  // drift-tracking policy concentrating its budget on the fast movers
  // beats a rotation that "wastes" most probes on databases whose
  // summaries barely age. If slow databases accumulated ranking-relevant
  // change over the horizon, broad coverage would be the right call and
  // the policies would not separate.
  o.slow_drift = 0.01;
  o.fast_drift = 0.4;  // keeps migration from saturating mid-run: a probe
                       // that is a few epochs old keeps losing accuracy
  return o;
}

corpus::TestbedOptions ChurnBedOptions(uint64_t seed) {
  corpus::TestbedOptions o = corpus::Testbed::Trec4Options(/*scale=*/1.0);
  o.seed = seed;
  o.num_databases = kDatabases;
  o.num_queries = kGeneratedQueries;
  o.min_db_docs = 100;
  o.max_db_docs = 400;
  o.min_query_words = 4;
  o.max_query_words = 10;
  o.model.vocab_size_by_depth[0] = 4000;
  o.model.vocab_size_by_depth[1] = 1500;
  o.model.vocab_size_by_depth[2] = 1000;
  o.model.vocab_size_by_depth[3] = 800;
  o.model.database_vocab_size = 300;
  o.model.doc_length_mean = 60.0;
  o.keep_documents = true;  // churn regenerates databases from these
  return o;
}

bool BitIdentical(const broker::RequestResult& a,
                  const broker::RequestResult& b) {
  return a.disposition == b.disposition && a.downgraded == b.downgraded &&
         a.arrival_ms == b.arrival_ms && a.start_ms == b.start_ms &&
         a.finish_ms == b.finish_ms && a.queue_wait_ms == b.queue_wait_ms &&
         a.service_ms == b.service_ms &&
         a.predicted_cost_ms == b.predicted_cost_ms &&
         a.service_inflation == b.service_inflation &&
         a.evaluations_completed == b.evaluations_completed &&
         a.ranking_hash == b.ranking_hash &&
         a.summary_epoch == b.summary_epoch;
}

double Percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const double rank = std::ceil(p / 100.0 * static_cast<double>(sorted.size()));
  size_t index = rank <= 1.0 ? 0 : static_cast<size_t>(rank) - 1;
  if (index >= sorted.size()) index = sorted.size() - 1;
  return sorted[index];
}

// Runs one scenario over its own churn replica. Everything is seeded from
// (config.seed, spec) only, so a rerun of the same spec is bit-identical.
ScenarioResult RunScenario(const corpus::Testbed& bed,
                           const std::vector<selection::Query>& queries,
                           const std::vector<size_t>& query_ids,
                           const ScenarioSpec& spec, size_t epochs,
                           size_t requests_per_epoch, double arrival_qps,
                           const bench::ExperimentConfig& config) {
  corpus::ChurnTestbed churn(&bed, BenchChurnOptions(config.seed));

  // Exhaustive probes: the target covers the largest database, so a probe
  // is essentially a full crawl and the TV distance between two probes of
  // an UNCHANGED database is ~0. This bench studies summary STALENESS —
  // probe-sampling error is the subject of the sampling benches — and a
  // near-zero noise floor is what lets the racing policy's learned rates
  // separate drifting databases from static ones.
  sampling::QbsOptions qbs;
  qbs.target_documents = 400;
  sampling::QbsSampler sampler(qbs,
                               corpus::BuildSamplerDictionary(bed.model(), 10));

  // Epoch-0 probe of every database.
  std::vector<sampling::SampleResult> samples;
  std::vector<corpus::CategoryId> classifications;
  {
    util::Rng rng(config.seed * 7919 + 104729);
    for (size_t i = 0; i < bed.num_databases(); ++i) {
      util::Rng db_rng = rng.Fork();
      samples.push_back(sampler.Sample(bed.database(i), db_rng));
      classifications.push_back(bed.category_of(i));
    }
  }
  // The summaries each database was last probed with — what SummaryDistance
  // diffs fresh probes against.
  std::vector<summary::ContentSummary> last_probed;
  for (const sampling::SampleResult& s : samples) {
    last_probed.push_back(s.summary);
  }

  core::MetasearcherOptions meta_options;
  meta_options.num_threads = 1;  // the broker owns the parallelism
  core::LiveMetasearcher live(&bed.hierarchy(), std::move(samples),
                              std::move(classifications), meta_options);

  sampling::RefreshSchedulerOptions sched_options;
  sched_options.policy = spec.policy;
  sched_options.seed = config.seed * 31 + 0x5EED;
  sampling::RefreshScheduler scheduler(bed.num_databases(), sched_options);

  const selection::CoriScorer cori;
  broker::BrokerOptions broker_options;
  broker_options.num_workers = kWorkers;
  broker_options.deadline_ms = kDeadlineMs;
  broker::QueryBroker broker(&live, &cori, broker_options);

  broker::OpenLoopOptions load_options;
  load_options.arrival_rate_qps = arrival_qps;
  load_options.seed = config.seed * 1000003ULL + 17;
  load_options.slow_rate = 0.0;  // the cold window is the only inflation
  broker::OpenLoopGenerator generator(load_options, queries.size());

  util::Rng probe_rng(config.seed * 48271 + 12345);

  ScenarioResult out;
  for (size_t epoch = 1; epoch <= epochs; ++epoch) {
    (void)churn.AdvanceEpoch();
    scheduler.BeginEpoch();

    // Probe + publish. Epoch 1 is a CALIBRATION sweep in every scenario —
    // the initial full crawl an operator runs before switching to budgeted
    // maintenance. It costs the same everywhere (so scenarios stay probe-
    // budget-comparable from epoch 2 on) and it seeds the racing policy's
    // drift-rate estimates: the policies differ in where the scarce budget
    // goes AFTER the federation has been seen once, not in sweep order.
    bool refreshed = false;
    std::vector<core::SummaryUpdate> updates;
    auto probe = [&](size_t db) {
      core::SummaryUpdate u;
      u.database = db;
      util::Rng db_rng = probe_rng.Fork();
      u.sample = sampler.Sample(churn.live_database(db), db_rng);
      u.classification = MajorityTopic(churn.doc_topics_of(db));
      scheduler.ReportDrift(
          db, summary::SummaryDistance(last_probed[db], u.sample.summary));
      last_probed[db] = u.sample.summary;
      updates.push_back(std::move(u));
    };
    if (epoch == 1) {
      for (size_t db = 0; db < bed.num_databases(); ++db) probe(db);
    } else if (spec.refresh_interval > 0 &&
               epoch % spec.refresh_interval == 0) {
      for (size_t slot = 0; slot < kProbeBudget; ++slot) {
        const size_t db = scheduler.PickNext();
        if (db >= bed.num_databases()) break;
        probe(db);
        ++out.probes;  // budgeted probes only; calibration is universal
      }
    }
    if (!updates.empty()) {
      const util::Status status = live.ApplyRefresh(std::move(updates));
      if (!status.ok()) {
        std::fprintf(stderr, "FAIL: %s refresh at epoch %zu: %s\n", spec.name,
                     epoch, status.message().c_str());
        std::exit(1);
      }
      refreshed = true;
    }

    // Serving slice under open-loop load. A refresh leaves the first
    // kColdRequests of the slice cache-cold (fixed inflation) — the
    // latency price of freshness, deterministic by construction.
    for (size_t i = 0; i < requests_per_epoch; ++i) {
      const broker::Arrival arrival = generator.Next();
      const double inflation =
          refreshed && i < kColdRequests ? kColdFactor : 1.0;
      broker.Submit(queries[arrival.query_index], arrival.arrival_ms,
                    inflation);
    }
    broker.Drain();

    // Quality slice: R_k of the published snapshot against the CURRENT
    // corpus, averaged over workload queries with any relevant documents.
    const std::shared_ptr<const core::Metasearcher> snap = live.Snapshot();
    double rk_sum = 0.0;
    size_t rk_count = 0;
    for (size_t qi = 0; qi < queries.size(); ++qi) {
      std::vector<size_t> relevant(bed.num_databases(), 0);
      size_t total = 0;
      for (size_t d = 0; d < bed.num_databases(); ++d) {
        relevant[d] = churn.CountRelevant(query_ids[qi], d);
        total += relevant[d];
      }
      if (total == 0) continue;
      const auto outcome = snap->SelectDatabases(
          queries[qi], cori, core::SummaryMode::kAdaptiveShrinkage);
      rk_sum += selection::RkScore(outcome.ranking, relevant, kRkK);
      ++rk_count;
    }
    out.rk_per_epoch.push_back(rk_count > 0
                                   ? rk_sum / static_cast<double>(rk_count)
                                   : 0.0);
  }

  out.stats = broker.ComputeStats();
  out.results = broker.results();
  out.cache = live.posterior_cache_stats();
  broker.Shutdown();

  double total = 0.0;
  for (double rk : out.rk_per_epoch) total += rk;
  out.mean_rk = out.rk_per_epoch.empty()
                    ? 0.0
                    : total / static_cast<double>(out.rk_per_epoch.size());
  // Steady state: the second half of the run. Early epochs carry almost
  // no drift, so every policy ties there (modulo probe-sampling noise);
  // the refresh-rate signal lives where staleness has compounded.
  const size_t half = out.rk_per_epoch.size() / 2;
  double steady = 0.0;
  for (size_t e = half; e < out.rk_per_epoch.size(); ++e) {
    steady += out.rk_per_epoch[e];
  }
  out.steady_rk = out.rk_per_epoch.size() > half
                      ? steady / static_cast<double>(out.rk_per_epoch.size() -
                                                     half)
                      : 0.0;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--json out.json]\n", argv[0]);
      return 2;
    }
  }
  // Full mode raises serving volume only. The degradation structure —
  // epoch count, crossover workload, probe schedule — is pinned so the
  // R_k assertions check the same deterministic trajectory in both
  // modes; what full mode adds is 4x the request pressure on the
  // epoch-swap path (queue depth, cold windows, cache churn).
  const size_t epochs = 8;
  const size_t requests_per_epoch = smoke ? 60 : 240;

  const bench::ExperimentConfig config = bench::ConfigFromEnv();
  const corpus::Testbed bed(ChurnBedOptions(config.seed * 20040613ULL + 5));

  // Workload: queries whose BEST database actually changes over the run.
  // A throwaway churn replica (deterministic — same testbed + churn seed
  // as every scenario's instance) is advanced through the full horizon to
  // find queries where the top database by true relevant count at the
  // final epoch differs from the top at epoch 1. Those are the queries
  // where an epoch-1 summary routes to the wrong database and only a
  // re-probe of the migrating winner can fix the ranking — so staleness
  // costs R_k recurringly, not just during one transition. Queries whose
  // winner never flips score ~1 under any refresh policy (top-k sets
  // saturate) and would only dilute the signal with probe-sampling noise.
  std::vector<size_t> query_ids;
  {
    corpus::ChurnTestbed replica(&bed, BenchChurnOptions(config.seed));
    std::set<corpus::CategoryId> targets;
    for (size_t d = 0; d < bed.num_databases(); ++d) {
      if (replica.drift_class(d) == corpus::DriftClass::kFast) {
        targets.insert(replica.migration_target(d));
      }
    }
    std::vector<size_t> candidates;
    for (size_t q = 0; q < bed.queries().size(); ++q) {
      if (targets.count(bed.queries()[q].topic) != 0) candidates.push_back(q);
    }
    const auto top_db = [&](size_t q) {
      size_t best = bed.num_databases();
      size_t best_count = 0;
      for (size_t d = 0; d < bed.num_databases(); ++d) {
        const size_t r = replica.CountRelevant(q, d);
        if (r > best_count) {  // ties break to the lowest database index
          best = d;
          best_count = r;
        }
      }
      return std::make_pair(best, best_count);
    };
    replica.AdvanceEpoch();  // epoch 1 — what the calibration sweep sees
    std::vector<std::pair<size_t, size_t>> at_start;
    for (size_t q : candidates) at_start.push_back(top_db(q));
    for (size_t e = 1; e < epochs; ++e) replica.AdvanceEpoch();
    // Round-robin across topics so the workload spreads over many
    // migrating databases instead of hinging on whichever one happens to
    // own the first matching queries.
    std::map<corpus::CategoryId, std::vector<size_t>> by_topic;
    for (size_t i = 0; i < candidates.size(); ++i) {
      const size_t q = candidates[i];
      const auto at_end = top_db(q);
      // Keep only true crossovers with enough mass to matter: the winner
      // flips between epoch 1 and the final epoch, and the final winner
      // holds a non-trivial document count.
      if (at_end.first == at_start[i].first || at_end.second < 4) continue;
      by_topic[bed.queries()[q].topic].push_back(q);
    }
    bool progress = true;
    for (size_t round = 0; progress && query_ids.size() < kMaxWorkloadQueries;
         ++round) {
      progress = false;
      for (const auto& [topic, topic_queries] : by_topic) {
        if (round >= topic_queries.size()) continue;
        if (query_ids.size() >= kMaxWorkloadQueries) break;
        query_ids.push_back(topic_queries[round]);
        progress = true;
      }
    }
    std::sort(query_ids.begin(), query_ids.end());
  }
  if (query_ids.size() < 4) {
    // Unlucky seed: too few drift-exposed queries generated. Fall back to
    // the full pool rather than benching an unrepresentative handful.
    query_ids.clear();
    for (size_t q = 0; q < bed.queries().size(); ++q) query_ids.push_back(q);
  }
  std::vector<selection::Query> queries;
  for (size_t q : query_ids) {
    queries.push_back(
        selection::Query{bed.analyzer().Analyze(bed.queries()[q].text)});
  }

  // Offered load from the full-quality cost model (see bench_broker).
  const util::Deadline::Costs costs;
  const double adaptive_cost_ms =
      static_cast<double>(kDatabases) *
      (costs.adaptive_evaluation_ms + costs.score_ms);
  const double sustainable_qps =
      static_cast<double>(kWorkers) * 1000.0 / adaptive_cost_ms;
  const double arrival_qps = kLoadFactor * sustainable_qps;

  std::printf("Churn degradation bench: %zu databases, %zu queries, "
              "%zu epochs x %zu requests, budget %zu probes/refresh\n",
              bed.num_databases(), queries.size(), epochs, requests_per_epoch,
              kProbeBudget);
  std::printf("Offered load %.1f qps (%.0f%% of sustainable), cold window "
              "%zu requests at %.1fx after each refresh\n\n",
              arrival_qps, kLoadFactor * 100.0, kColdRequests, kColdFactor);

  bench::BenchReport report("churn_degradation");
  report.SetConfig(config);
  report.AddConfig("databases", static_cast<double>(kDatabases));
  report.AddConfig("epochs", static_cast<double>(epochs));
  report.AddConfig("requests_per_epoch",
                   static_cast<double>(requests_per_epoch));
  report.AddConfig("probe_budget", static_cast<double>(kProbeBudget));
  report.AddConfig("workers", static_cast<double>(kWorkers));
  report.AddConfig("deadline_ms", kDeadlineMs);
  report.AddConfig("cold_requests", static_cast<double>(kColdRequests));
  report.AddConfig("cold_factor", kColdFactor);
  report.AddConfig("arrival_qps", arrival_qps);
  report.set_embed_metrics(false);

  const ScenarioSpec specs[] = {
      {"racing_every1", sampling::RefreshPolicy::kRacing, 1},
      {"racing_every2", sampling::RefreshPolicy::kRacing, 2},
      {"racing_every4", sampling::RefreshPolicy::kRacing, 4},
      {"round_robin_every1", sampling::RefreshPolicy::kRoundRobin, 1},
      {"never", sampling::RefreshPolicy::kNone, 0},
  };
  std::vector<ScenarioResult> runs;
  for (const ScenarioSpec& spec : specs) {
    ScenarioResult run = RunScenario(bed, queries, query_ids, spec, epochs,
                                     requests_per_epoch, arrival_qps, config);
    const ScenarioResult rerun =
        RunScenario(bed, queries, query_ids, spec, epochs, requests_per_epoch,
                    arrival_qps, config);
    if (run.results.size() != rerun.results.size() ||
        run.rk_per_epoch != rerun.rk_per_epoch) {
      std::fprintf(stderr, "FAIL: %s rerun diverged (counts or R_k)\n",
                   spec.name);
      return 1;
    }
    for (size_t i = 0; i < run.results.size(); ++i) {
      if (!BitIdentical(run.results[i], rerun.results[i])) {
        std::fprintf(stderr,
                     "FAIL: %s request %zu differs between identically "
                     "seeded runs\n",
                     spec.name, i);
        return 1;
      }
    }
    if (run.stats.resolved() != run.results.size() ||
        run.stats.cancelled != 0) {
      std::fprintf(stderr, "FAIL: %s resolved %zu of %zu\n", spec.name,
                   run.stats.resolved(), run.results.size());
      return 1;
    }

    std::vector<double> admitted_e2e_ms;
    double makespan_ms = 0.0;
    for (const broker::RequestResult& r : run.results) {
      makespan_ms = std::max(makespan_ms, r.finish_ms);
      if (!r.admitted()) continue;
      if (r.e2e_ms() > kDeadlineMs + 1e-6) {
        std::fprintf(stderr, "FAIL: %s admitted e2e %.3f ms > deadline\n",
                     spec.name, r.e2e_ms());
        return 1;
      }
      admitted_e2e_ms.push_back(r.e2e_ms());
    }
    std::sort(admitted_e2e_ms.begin(), admitted_e2e_ms.end());
    const double goodput_qps =
        makespan_ms > 0.0
            ? static_cast<double>(run.stats.served()) * 1000.0 / makespan_ms
            : 0.0;
    const double p95_us = Percentile(admitted_e2e_ms, 95.0) * 1000.0;

    std::printf("%-20s steady R_%zu %.4f  mean %.4f  p95 %8.2f us  "
                "goodput %6.1f qps  probes %2zu  [bit-identical rerun]\n",
                spec.name, kRkK, run.steady_rk, run.mean_rk, p95_us,
                goodput_qps, run.probes);
    std::printf("%-20s   per-epoch R_%zu:", "", kRkK);
    for (double rk : run.rk_per_epoch) std::printf(" %.3f", rk);
    std::printf("\n");

    bench::BenchReport::Scenario& scenario = report.AddScenario(spec.name);
    scenario.Add("rk_steady", run.steady_rk);
    scenario.Add("rk_mean", run.mean_rk);
    scenario.Add("rk_last_epoch", run.rk_per_epoch.back());
    scenario.Add("qps_goodput", goodput_qps);
    scenario.Add("p95_us", p95_us);
    scenario.Add("p50_us", Percentile(admitted_e2e_ms, 50.0) * 1000.0);
    scenario.Add("served", static_cast<double>(run.stats.served()));
    scenario.Add("shed", static_cast<double>(run.stats.shed()));
    scenario.Add("expired", static_cast<double>(run.stats.expired()));
    scenario.Add("refresh_probes", static_cast<double>(run.probes));
    // Worker-timing dependent (eviction/stale attribution races with
    // in-flight old-epoch requests): informational only, excluded from
    // the rerun identity above.
    scenario.Add("wall_cache_hits", static_cast<double>(run.cache.hits));
    scenario.Add("wall_cache_misses", static_cast<double>(run.cache.misses));
    scenario.Add("wall_cache_evictions",
                 static_cast<double>(run.cache.evictions));
    scenario.Add("wall_cache_stale_misses",
                 static_cast<double>(run.cache.stale_misses));
    runs.push_back(std::move(run));
  }

  // Tentpole claim 1: staleness degrades selection monotonically.
  const double rk1 = runs[0].steady_rk;  // every1
  const double rk2 = runs[1].steady_rk;  // every2
  const double rk4 = runs[2].steady_rk;  // every4
  const double rk_never = runs[4].steady_rk;
  if (!(rk1 + 1e-9 >= rk2 && rk2 + 1e-9 >= rk4 && rk4 + 1e-9 >= rk_never)) {
    std::fprintf(stderr,
                 "FAIL: R_k not monotone in refresh interval: "
                 "every1 %.4f every2 %.4f every4 %.4f never %.4f\n",
                 rk1, rk2, rk4, rk_never);
    return 1;
  }
  // Tentpole claim 2: drift-aware racing beats uniform rotation at equal
  // probe budget.
  const double rk_rr = runs[3].steady_rk;
  if (!(rk1 > rk_rr)) {
    std::fprintf(stderr,
                 "FAIL: racing %.4f does not beat round-robin %.4f at "
                 "equal budget\n",
                 rk1, rk_rr);
    return 1;
  }
  std::printf("\nMonotone degradation: every1 %.4f >= every2 %.4f >= "
              "every4 %.4f >= never %.4f; racing beats round-robin "
              "(%.4f > %.4f)\n",
              rk1, rk2, rk4, rk_never, rk1, rk_rr);

  if (!json_path.empty() && !report.WriteFile(json_path)) return 1;
  return 0;
}
