// Reproduces Table 2: the EM category mixture weights λ_i for two example
// databases of the Web set — one under a depth-3 leaf in Health (AIDS.org
// in the paper) and one under Science/SocialSciences/Economics (the
// American Economics Association in the paper).

#include <cstdio>

#include "harness/experiment.h"

using namespace fedsearch;

namespace {

void PrintLambdaTable(const corpus::Testbed& bed,
                      const core::Metasearcher& meta, size_t db) {
  const corpus::TopicHierarchy& h = bed.hierarchy();
  std::printf("Database %s\n", bed.database(db).name().c_str());
  const auto& lambdas = meta.lambdas(db);
  std::printf("  %-24s %8s\n", "Category", "lambda");
  std::printf("  %-24s %8.3f\n", "Uniform", lambdas[0]);
  const std::vector<corpus::CategoryId> path =
      h.PathFromRoot(meta.classification(db));
  for (size_t i = 0; i < path.size(); ++i) {
    std::printf("  %-24s %8.3f\n", h.node(path[i]).name.c_str(),
                lambdas[i + 1]);
  }
  std::printf("  %-24s %8.3f\n", "(database)", lambdas.back());
}

}  // namespace

int main() {
  const bench::ExperimentConfig config = bench::ConfigFromEnv();
  const corpus::Testbed& bed =
      bench::GetTestbed(bench::DataSet::kWeb, config);
  auto meta = bench::BuildMetasearcher(
      bench::DataSet::kWeb,
      bench::SampleFederation(bench::DataSet::kWeb, bench::SamplerKind::kQbs,
                              /*frequency_estimation=*/true, /*run_index=*/0,
                              config),
      config);

  std::printf("Table 2: category mixture weights (QBS, freq. estimation)\n\n");
  const corpus::CategoryId aids =
      bed.hierarchy().FindByPath("Root/Health/Diseases/Aids");
  const corpus::CategoryId econ =
      bed.hierarchy().FindByPath("Root/Science/SocialSciences/Economics");
  bool printed_aids = false;
  bool printed_econ = false;
  for (size_t i = 0; i < bed.num_databases(); ++i) {
    if (!printed_aids && bed.category_of(i) == aids) {
      PrintLambdaTable(bed, *meta, i);
      std::printf("\n");
      printed_aids = true;
    } else if (!printed_econ && bed.category_of(i) == econ) {
      PrintLambdaTable(bed, *meta, i);
      std::printf("\n");
      printed_econ = true;
    }
  }
  return 0;
}
