// Reproduces Table 7: unweighted precision up of shrunk vs unshrunk content
// summaries (Section 6.1).

#include "harness/experiment.h"

int main() {
  using namespace fedsearch;
  bench::RunQualityTable(
      "Table 7: unweighted precision up",
      [](const summary::SummaryQuality& q) { return q.unweighted_precision; },
      bench::ConfigFromEnv());
  return 0;
}
