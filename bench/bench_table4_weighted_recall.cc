// Reproduces Table 4: weighted recall wr of shrunk vs unshrunk content
// summaries for every (data set, sampler, frequency estimation)
// configuration (Section 6.1).

#include "harness/experiment.h"

int main() {
  using namespace fedsearch;
  bench::RunQualityTable(
      "Table 4: weighted recall wr",
      [](const summary::SummaryQuality& q) { return q.weighted_recall; },
      bench::ConfigFromEnv());
  return 0;
}
