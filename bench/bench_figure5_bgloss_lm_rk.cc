// Reproduces Figure 5: the R_k ratio for bGlOSS over TREC4 with QBS
// summaries (panel a) and for LM over TREC6 with FPS summaries (panel b),
// comparing shrinkage, hierarchical, and plain strategies (Section 6.2).

#include <string>

#include "fedsearch/selection/bgloss.h"
#include "fedsearch/selection/lm.h"
#include "harness/experiment.h"

using namespace fedsearch;

namespace {

void RunPanel(const char* title, bench::DataSet dataset,
              bench::SamplerKind sampler,
              const selection::ScoringFunction& scorer,
              const bench::ExperimentConfig& config) {
  auto meta = bench::BuildMetasearcher(
      dataset,
      bench::SampleFederation(dataset, sampler,
                              /*frequency_estimation=*/true, 0, config),
      config);
  std::vector<std::string> labels;
  std::vector<std::array<double, bench::kMaxK>> curves;
  for (bench::SelectionMethod method :
       {bench::SelectionMethod::kShrinkage,
        bench::SelectionMethod::kHierarchical,
        bench::SelectionMethod::kPlain}) {
    labels.push_back(std::string(Name(sampler)) + "-" + Name(method));
    curves.push_back(
        bench::AverageRkCurve(dataset, *meta, scorer, method, config));
  }
  bench::PrintRkPanel(title, labels, curves);
}

}  // namespace

int main() {
  const bench::ExperimentConfig config = bench::ConfigFromEnv();
  RunPanel("Figure 5a (TREC4, QBS): R_k for bGlOSS", bench::DataSet::kTrec4,
           bench::SamplerKind::kQbs, selection::BglossScorer(), config);
  RunPanel("Figure 5b (TREC6, FPS): R_k for LM", bench::DataSet::kTrec6,
           bench::SamplerKind::kFps, selection::LmScorer(), config);
  return 0;
}
