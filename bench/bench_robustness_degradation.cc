// Robustness sweep: how does selection quality degrade when content
// summaries are built over an unreliable remote interface? QBS runs
// through a FlakyDatabase decorator at increasing mixed-fault rates, and
// each resulting federation is evaluated with CORI under the three summary
// modes. The metric is the paper's R_k — the weighted recall of relevant
// documents captured by the top-k selected databases — averaged over
// k = 1..20 and all queries. Shrinkage pools evidence across the category
// hierarchy, so it should absorb sampling damage (lost documents, partial
// samples, dead databases) far better than Plain summaries.

// Usage:
//   bench_robustness_degradation [--json out.json]

#include <array>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "fedsearch/corpus/topic_model.h"
#include "fedsearch/index/flaky_database.h"
#include "fedsearch/sampling/qbs_sampler.h"
#include "fedsearch/selection/cori.h"
#include "harness/experiment.h"
#include "harness/report.h"

using namespace fedsearch;

namespace {

constexpr double kFaultRates[] = {0.0, 0.05, 0.1, 0.2, 0.3};

double MeanOverK(const std::array<double, bench::kMaxK>& curve) {
  double total = 0.0;
  for (double v : curve) total += v;
  return total / static_cast<double>(bench::kMaxK);
}

struct HealthTally {
  size_t complete = 0;
  size_t partial = 0;
  size_t aborted = 0;
  size_t transient_failures = 0;
  size_t documents_lost = 0;
};

bench::Federation SampleThroughFaults(const corpus::Testbed& bed,
                                      double fault_rate, size_t rate_index,
                                      const bench::ExperimentConfig& config,
                                      HealthTally& tally) {
  sampling::QbsOptions options;
  sampling::QbsSampler qbs(options,
                           corpus::BuildSamplerDictionary(bed.model(), 20));
  util::Rng rng(config.seed * 7919 + rate_index * 104729);
  bench::Federation federation;
  for (size_t i = 0; i < bed.num_databases(); ++i) {
    index::LocalDatabase local(&bed.database(i));
    index::FlakyDatabase flaky(&local, index::FaultProfile::Mixed(fault_rate),
                               config.seed * 1000003 + i * 7919 +
                                   rate_index * 104729);
    util::Rng db_rng = rng.Fork();
    federation.samples.push_back(qbs.Sample(flaky, bed.analyzer(), db_rng));
    federation.classifications.push_back(bed.directory_category_of(i));
    const sampling::SamplingHealth& h = federation.samples.back().health;
    switch (h.outcome) {
      case sampling::SamplingOutcome::kComplete: ++tally.complete; break;
      case sampling::SamplingOutcome::kPartial: ++tally.partial; break;
      case sampling::SamplingOutcome::kAborted: ++tally.aborted; break;
    }
    tally.transient_failures += h.transient_failures;
    tally.documents_lost += h.documents_lost;
  }
  return federation;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--json out.json]\n", argv[0]);
      return 2;
    }
  }
  const bench::ExperimentConfig config = bench::ConfigFromEnv();
  const bench::DataSet dataset = bench::DataSet::kTrec4;
  const corpus::Testbed& bed = bench::GetTestbed(dataset, config);
  const selection::CoriScorer cori;

  bench::BenchReport report("robustness_degradation");
  report.SetConfig(config);
  report.AddConfig("dataset", std::string(Name(dataset)));
  report.AddConfig("databases", static_cast<double>(bed.num_databases()));

  std::printf(
      "Robustness sweep: QBS through fault-injected interfaces (TREC4, "
      "CORI;\nweighted recall of relevant documents = mean R_k over "
      "k=1..20)\n");
  std::printf("%-6s %8s %8s %9s | %5s %5s %5s %9s %7s\n", "Faults", "Plain",
              "Adaptive", "Universal", "cmplt", "part", "abort", "retries",
              "lostdoc");

  std::vector<double> plain_by_rate, adaptive_by_rate, universal_by_rate;
  for (size_t rate_index = 0; rate_index < std::size(kFaultRates);
       ++rate_index) {
    const double rate = kFaultRates[rate_index];
    HealthTally tally;
    auto meta = bench::BuildMetasearcher(
        dataset, SampleThroughFaults(bed, rate, rate_index, config, tally),
        config);
    const double plain = MeanOverK(bench::AverageRkCurveForMode(
        dataset, *meta, cori, core::SummaryMode::kPlain, config));
    const double adaptive = MeanOverK(bench::AverageRkCurveForMode(
        dataset, *meta, cori, core::SummaryMode::kAdaptiveShrinkage, config));
    const double universal = MeanOverK(bench::AverageRkCurveForMode(
        dataset, *meta, cori, core::SummaryMode::kUniversalShrinkage,
        config));
    plain_by_rate.push_back(plain);
    adaptive_by_rate.push_back(adaptive);
    universal_by_rate.push_back(universal);
    std::printf("%-6.2f %8.3f %8.3f %9.3f | %5zu %5zu %5zu %9zu %7zu\n",
                rate, plain, adaptive, universal, tally.complete,
                tally.partial, tally.aborted, tally.transient_failures,
                tally.documents_lost);
    std::fflush(stdout);

    char scenario_name[32];
    std::snprintf(scenario_name, sizeof(scenario_name), "faults_%.2f", rate);
    report.AddScenario(scenario_name)
        .Add("rk_plain", plain)
        .Add("rk_adaptive", adaptive)
        .Add("rk_universal", universal)
        .Add("runs_complete", static_cast<double>(tally.complete))
        .Add("runs_partial", static_cast<double>(tally.partial))
        .Add("runs_aborted", static_cast<double>(tally.aborted))
        .Add("transient_failures",
             static_cast<double>(tally.transient_failures))
        .Add("documents_lost", static_cast<double>(tally.documents_lost));
  }

  // Degradation relative to the fault-free run, at the 20% fault rate.
  const size_t at20 = 3;
  const double plain_drop =
      (plain_by_rate[0] - plain_by_rate[at20]) / plain_by_rate[0];
  const double adaptive_drop =
      (adaptive_by_rate[0] - adaptive_by_rate[at20]) / adaptive_by_rate[0];
  std::printf(
      "\nAt 20%% faults: Plain loses %.1f%%, Adaptive loses %.1f%% of its "
      "fault-free quality.\n",
      100.0 * plain_drop, 100.0 * adaptive_drop);

  if (!json_path.empty() && !report.WriteFile(json_path)) return 1;
  return 0;
}
