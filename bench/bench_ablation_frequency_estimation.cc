// Ablation for Section 6.2's "Frequency Estimation" discussion: the
// Appendix A Mandelbrot-law recalibration should considerably improve CORI
// (which consumes document frequencies) while leaving bGlOSS and LM mostly
// unchanged (they consume probabilities).

#include <cstdio>

#include "fedsearch/selection/bgloss.h"
#include "fedsearch/selection/cori.h"
#include "fedsearch/selection/lm.h"
#include "harness/experiment.h"

using namespace fedsearch;

namespace {

double MeanOverK(const std::array<double, bench::kMaxK>& curve) {
  double total = 0.0;
  for (double v : curve) total += v;
  return total / static_cast<double>(bench::kMaxK);
}

}  // namespace

int main() {
  const bench::ExperimentConfig config = bench::ConfigFromEnv();
  const bench::DataSet dataset = bench::DataSet::kTrec4;

  auto meta_raw = bench::BuildMetasearcher(
      dataset,
      bench::SampleFederation(dataset, bench::SamplerKind::kQbs,
                              /*frequency_estimation=*/false, 0, config),
      config);
  auto meta_est = bench::BuildMetasearcher(
      dataset,
      bench::SampleFederation(dataset, bench::SamplerKind::kQbs,
                              /*frequency_estimation=*/true, 0, config),
      config);

  std::printf(
      "Ablation: frequency estimation (TREC4, QBS, adaptive shrinkage; mean "
      "R_k over k=1..20)\n");
  std::printf("%-10s %14s %14s\n", "Selection", "RawFrequency", "FreqEstimate");

  const selection::BglossScorer bgloss;
  const selection::CoriScorer cori;
  const selection::LmScorer lm;
  for (const selection::ScoringFunction* scorer :
       std::initializer_list<const selection::ScoringFunction*>{&bgloss,
                                                                &cori, &lm}) {
    const double raw = MeanOverK(bench::AverageRkCurveForMode(
        dataset, *meta_raw, *scorer, core::SummaryMode::kAdaptiveShrinkage,
        config));
    const double est = MeanOverK(bench::AverageRkCurveForMode(
        dataset, *meta_est, *scorer, core::SummaryMode::kAdaptiveShrinkage,
        config));
    std::printf("%-10s %14.3f %14.3f\n", std::string(scorer->name()).c_str(),
                raw, est);
    std::fflush(stdout);
  }
  return 0;
}
