// Extension experiment: the paper's footnote 9 leaves "shrinkage together
// with ReDDE [27]" as future work. This bench implements the comparison:
// ReDDE (centralized sample index over the same QBS samples) against CORI
// with plain and with adaptively-shrunk summaries, on the TREC4 workload.

#include <cstdio>
#include <string>

#include "fedsearch/selection/cori.h"
#include "fedsearch/selection/redde.h"
#include "fedsearch/selection/rk_metric.h"
#include "harness/experiment.h"

using namespace fedsearch;

int main() {
  const bench::ExperimentConfig config = bench::ConfigFromEnv();
  const bench::DataSet dataset = bench::DataSet::kTrec4;
  const corpus::Testbed& bed = bench::GetTestbed(dataset, config);

  // One sampling pass feeds all three methods (ReDDE consumes the sampled
  // documents themselves; CORI consumes the derived summaries).
  bench::Federation federation = bench::SampleFederation(
      dataset, bench::SamplerKind::kQbs, /*frequency_estimation=*/true, 0,
      config, /*keep_documents=*/true);
  std::vector<const sampling::SampleResult*> sample_ptrs;
  for (const sampling::SampleResult& s : federation.samples) {
    sample_ptrs.push_back(&s);
  }
  const selection::ReddeSelector redde(sample_ptrs);
  auto meta = bench::BuildMetasearcher(dataset, std::move(federation), config);

  const selection::CoriScorer cori;
  std::array<double, bench::kMaxK> redde_curve{};
  size_t evaluated = 0;
  for (size_t qi = 0; qi < bed.queries().size(); ++qi) {
    const selection::Query query{
        bed.analyzer().Analyze(bed.queries()[qi].text)};
    std::vector<size_t> relevant(bed.num_databases());
    size_t total = 0;
    for (size_t d = 0; d < bed.num_databases(); ++d) {
      relevant[d] = bed.CountRelevant(qi, d);
      total += relevant[d];
    }
    if (total == 0) continue;
    ++evaluated;
    const auto ranking = redde.Select(query, bench::kMaxK);
    for (size_t k = 1; k <= bench::kMaxK; ++k) {
      redde_curve[k - 1] += selection::RkScore(ranking, relevant, k);
    }
  }
  if (evaluated > 0) {
    for (double& v : redde_curve) v /= static_cast<double>(evaluated);
  }

  bench::PrintRkPanel(
      "Extension (TREC4, QBS): ReDDE vs CORI plain vs CORI shrinkage",
      {"ReDDE", "CORI-Plain", "CORI-Shrinkage"},
      {redde_curve,
       bench::AverageRkCurveForMode(dataset, *meta, cori,
                                    core::SummaryMode::kPlain, config),
       bench::AverageRkCurveForMode(dataset, *meta, cori,
                                    core::SummaryMode::kAdaptiveShrinkage,
                                    config)});
  return 0;
}
