// Serving-layer throughput: queries/sec of Metasearcher::SelectDatabases
// with one thread versus the auto-detected thread count, for each summary
// mode, plus posterior-cache hit rates. Before timing anything the bench
// verifies the parallel rankings are bit-identical to the serial ones —
// a speedup that changes results would be a bug, not a feature.
//
// Usage:
//   bench_serving_throughput [--smoke] [--threads N]
//
// --smoke runs one timing repetition (CI sanity check); --threads overrides
// the parallel thread count (default: FEDSEARCH_THREADS, else hardware
// concurrency). FEDSEARCH_SCALE / FEDSEARCH_SEED apply as in every bench.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "fedsearch/selection/bgloss.h"
#include "fedsearch/selection/cori.h"
#include "fedsearch/util/thread_pool.h"
#include "harness/experiment.h"

using namespace fedsearch;

namespace {

struct TimingResult {
  double qps = 0.0;
  size_t queries = 0;
};

TimingResult TimeSelection(const core::Metasearcher& meta,
                           const std::vector<selection::Query>& queries,
                           const selection::ScoringFunction& scorer,
                           core::SummaryMode mode, size_t repetitions) {
  // One untimed pass warms the posterior cache the way a serving process
  // would be warm after its first few requests.
  for (const selection::Query& q : queries) {
    meta.SelectDatabases(q, scorer, mode);
  }
  const auto start = std::chrono::steady_clock::now();
  size_t served = 0;
  for (size_t rep = 0; rep < repetitions; ++rep) {
    for (const selection::Query& q : queries) {
      const auto outcome = meta.SelectDatabases(q, scorer, mode);
      if (outcome.databases_considered == 0) std::abort();  // keep it live
      ++served;
    }
  }
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  TimingResult r;
  r.queries = served;
  r.qps = elapsed.count() > 0.0 ? static_cast<double>(served) / elapsed.count()
                                : 0.0;
  return r;
}

bool VerifyBitIdentical(const core::Metasearcher& serial,
                        const core::Metasearcher& parallel,
                        const std::vector<selection::Query>& queries,
                        const selection::ScoringFunction& scorer,
                        core::SummaryMode mode) {
  for (const selection::Query& q : queries) {
    const auto a = serial.SelectDatabases(q, scorer, mode);
    const auto b = parallel.SelectDatabases(q, scorer, mode);
    if (a.shrinkage_applied != b.shrinkage_applied ||
        a.category_fallbacks != b.category_fallbacks ||
        a.ranking.size() != b.ranking.size()) {
      return false;
    }
    for (size_t i = 0; i < a.ranking.size(); ++i) {
      if (a.ranking[i].database != b.ranking[i].database ||
          a.ranking[i].score != b.ranking[i].score) {
        return false;
      }
    }
  }
  return true;
}

const char* Name(core::SummaryMode mode) {
  switch (mode) {
    case core::SummaryMode::kPlain:
      return "plain";
    case core::SummaryMode::kAdaptiveShrinkage:
      return "adaptive";
    case core::SummaryMode::kUniversalShrinkage:
      return "universal";
  }
  return "?";
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  size_t threads = util::ThreadPool::DefaultThreadCount();
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = static_cast<size_t>(std::atol(argv[++i]));
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--threads N]\n", argv[0]);
      return 2;
    }
  }
  if (threads < 1) threads = 1;
  const size_t repetitions = smoke ? 1 : 5;

  const bench::ExperimentConfig config = bench::ConfigFromEnv();
  const bench::DataSet dataset = bench::DataSet::kTrec4;
  const corpus::Testbed& bed = bench::GetTestbed(dataset, config);

  std::vector<selection::Query> queries;
  for (const corpus::TestQuery& tq : bed.queries()) {
    queries.push_back(selection::Query{bed.analyzer().Analyze(tq.text)});
  }

  core::MetasearcherOptions serial_options;
  serial_options.num_threads = 1;
  auto serial = bench::BuildMetasearcher(
      dataset,
      bench::SampleFederation(dataset, bench::SamplerKind::kQbs,
                              /*frequency_estimation=*/true, 0, config),
      config, serial_options);
  core::MetasearcherOptions parallel_options;
  parallel_options.num_threads = threads;
  auto parallel = bench::BuildMetasearcher(
      dataset,
      bench::SampleFederation(dataset, bench::SamplerKind::kQbs,
                              /*frequency_estimation=*/true, 0, config),
      config, parallel_options);

  std::printf("Serving throughput: %s, %zu databases, %zu queries, "
              "%zu repetitions\n",
              Name(dataset), serial->num_databases(), queries.size(),
              repetitions);
  std::printf("Threads: serial=1, parallel=%zu\n\n", parallel->num_threads());

  const selection::CoriScorer cori;
  const selection::BglossScorer bgloss;

  for (core::SummaryMode mode :
       {core::SummaryMode::kPlain, core::SummaryMode::kUniversalShrinkage,
        core::SummaryMode::kAdaptiveShrinkage}) {
    for (const selection::ScoringFunction* scorer :
         std::initializer_list<const selection::ScoringFunction*>{&cori,
                                                                  &bgloss}) {
      if (!VerifyBitIdentical(*serial, *parallel, queries, *scorer, mode)) {
        std::fprintf(stderr,
                     "FAIL: %s/%s parallel ranking differs from serial\n",
                     Name(mode), std::string(scorer->name()).c_str());
        return 1;
      }
      const TimingResult one =
          TimeSelection(*serial, queries, *scorer, mode, repetitions);
      const TimingResult many =
          TimeSelection(*parallel, queries, *scorer, mode, repetitions);
      std::printf("%-9s %-7s %10.1f qps (1 thread) %10.1f qps (%zu threads)"
                  "  speedup %.2fx  [bit-identical]\n",
                  Name(mode), std::string(scorer->name()).c_str(), one.qps,
                  many.qps, parallel->num_threads(),
                  one.qps > 0.0 ? many.qps / one.qps : 0.0);
      std::fflush(stdout);
    }
  }

  const auto serial_stats = serial->posterior_cache_stats();
  const auto parallel_stats = parallel->posterior_cache_stats();
  std::printf("\nPosterior cache: serial %llu hits / %llu misses "
              "(%.1f%% hit rate), parallel %llu hits / %llu misses "
              "(%.1f%% hit rate)\n",
              static_cast<unsigned long long>(serial_stats.hits),
              static_cast<unsigned long long>(serial_stats.misses),
              100.0 * serial_stats.hit_rate(),
              static_cast<unsigned long long>(parallel_stats.hits),
              static_cast<unsigned long long>(parallel_stats.misses),
              100.0 * parallel_stats.hit_rate());
  return 0;
}
