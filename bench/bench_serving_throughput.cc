// Serving-layer throughput: queries/sec of Metasearcher::SelectDatabases
// with one thread versus the auto-detected thread count, for each summary
// mode, plus posterior-cache hit rates. Before timing anything the bench
// verifies the parallel rankings are bit-identical to the serial ones —
// a speedup that changes results would be a bug, not a feature.
//
// Usage:
//   bench_serving_throughput [--smoke] [--threads N] [--json out.json]
//                            [--trace out.json] [--trace-out trace.json]
//
// --smoke lowers the repetition floor to three passes (CI sanity check;
// every timed run still lasts >= 1 s so the gated best-pass CPU numbers
// have passes to choose from); --threads overrides
// the parallel thread count (default: FEDSEARCH_THREADS, else hardware
// concurrency); --json writes a schema-versioned BENCH report (see
// harness/report.h) consumed by tools/check_bench_regression.py; --trace
// enables span tracing and writes the span timeline as JSON; --trace-out
// writes the same spans as a Chrome-trace/Perfetto timeline (load in
// chrome://tracing or feed to tools/analyze_timeline.py).
// FEDSEARCH_SCALE / FEDSEARCH_SEED apply as in every bench.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "fedsearch/selection/bgloss.h"
#include "fedsearch/selection/cori.h"
#include "fedsearch/util/metrics.h"
#include "fedsearch/util/thread_pool.h"
#include "fedsearch/util/trace.h"
#include "harness/experiment.h"
#include "harness/report.h"

using namespace fedsearch;

namespace {

struct TimingResult {
  double wall_qps = 0.0;  // full-window wall-clock throughput; load-sensitive
  double cpu_qps = 0.0;   // best-pass CPU-time throughput; gateable
  size_t queries = 0;
};

// Times both on the wall clock (what a user experiences) and on CPU time
// (what this code costs). The regression gate compares only the CPU-time
// numbers, built from each query's *minimum* CPU cost across passes:
// interference can only make an execution more expensive — descheduling
// stops the wall clock's meaning, and even CPU time inflates under cache
// pollution and frequency scaling — so one quiet execution per query over
// many passes recovers what the code itself costs. (The same estimator
// underlies every serious timing harness; see e.g. timeit's min-of-runs.)
TimingResult TimeSelection(const core::Metasearcher& meta,
                           const std::vector<selection::Query>& queries,
                           const selection::ScoringFunction& scorer,
                           core::SummaryMode mode, size_t min_repetitions,
                           uint64_t min_elapsed_ns,
                           util::Histogram* wall_latency_ns,
                           util::Histogram* cpu_latency_ns) {
  constexpr uint64_t kNoTime = ~uint64_t{0};
  // One untimed pass warms the posterior cache the way a serving process
  // would be warm after its first few requests.
  for (const selection::Query& q : queries) {
    meta.SelectDatabases(q, scorer, mode);
  }
  // Repeat whole passes until both floors are met: fast modes finish one
  // pass in tens of milliseconds, where scheduler jitter dominates any
  // single measurement — the repetitions are what give every query a
  // chance at an interference-free execution.
  const uint64_t start = util::MonotonicNanos();
  size_t served = 0;
  size_t reps = 0;
  uint64_t elapsed = 0;
  // Per-query floors: process-CPU cost (includes pool work; feeds qps)
  // and calling-thread CPU cost (serial runs only; feeds the latency
  // percentiles).
  std::vector<uint64_t> min_cpu_ns(queries.size(), kNoTime);
  std::vector<uint64_t> min_lat_ns(queries.size(), kNoTime);
  do {
    for (size_t i = 0; i < queries.size(); ++i) {
      const uint64_t q_wall = util::MonotonicNanos();
      const uint64_t q_proc = util::ProcessCpuNanos();
      const uint64_t q_thread = util::ThreadCpuNanos();
      const auto outcome = meta.SelectDatabases(queries[i], scorer, mode);
      if (outcome.databases_considered == 0) std::abort();  // keep it live
      const uint64_t proc_ns = util::ProcessCpuNanos() - q_proc;
      if (proc_ns < min_cpu_ns[i]) min_cpu_ns[i] = proc_ns;
      if (cpu_latency_ns != nullptr) {
        const uint64_t lat_ns = util::ThreadCpuNanos() - q_thread;
        if (lat_ns < min_lat_ns[i]) min_lat_ns[i] = lat_ns;
      }
      if (wall_latency_ns != nullptr) {
        wall_latency_ns->Record(util::MonotonicNanos() - q_wall);
      }
      ++served;
    }
    ++reps;
    elapsed = util::MonotonicNanos() - start;
  } while (reps < min_repetitions || elapsed < min_elapsed_ns);
  if (cpu_latency_ns != nullptr) {
    for (uint64_t v : min_lat_ns) cpu_latency_ns->Record(v);
  }
  uint64_t min_total_cpu_ns = 0;
  for (uint64_t v : min_cpu_ns) min_total_cpu_ns += v;
  const double wall_s = static_cast<double>(elapsed) * 1e-9;
  const double cpu_s = static_cast<double>(min_total_cpu_ns) * 1e-9;
  TimingResult r;
  r.queries = served;
  r.wall_qps = wall_s > 0.0 ? static_cast<double>(served) / wall_s : 0.0;
  r.cpu_qps =
      cpu_s > 0.0 ? static_cast<double>(queries.size()) / cpu_s : 0.0;
  return r;
}

bool VerifyBitIdentical(const core::Metasearcher& serial,
                        const core::Metasearcher& parallel,
                        const std::vector<selection::Query>& queries,
                        const selection::ScoringFunction& scorer,
                        core::SummaryMode mode) {
  for (const selection::Query& q : queries) {
    const auto a = serial.SelectDatabases(q, scorer, mode);
    const auto b = parallel.SelectDatabases(q, scorer, mode);
    if (a.shrinkage_applied != b.shrinkage_applied ||
        a.category_fallbacks != b.category_fallbacks ||
        a.ranking.size() != b.ranking.size()) {
      return false;
    }
    for (size_t i = 0; i < a.ranking.size(); ++i) {
      if (a.ranking[i].database != b.ranking[i].database ||
          a.ranking[i].score != b.ranking[i].score) {
        return false;
      }
    }
  }
  return true;
}

const char* Name(core::SummaryMode mode) {
  switch (mode) {
    case core::SummaryMode::kPlain:
      return "plain";
    case core::SummaryMode::kAdaptiveShrinkage:
      return "adaptive";
    case core::SummaryMode::kUniversalShrinkage:
      return "universal";
  }
  return "?";
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  size_t threads = util::ThreadPool::DefaultThreadCount();
  std::string json_path;
  std::string trace_path;
  std::string perfetto_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = static_cast<size_t>(std::atol(argv[++i]));
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc) {
      perfetto_path = argv[++i];
    } else if (std::strncmp(argv[i], "--trace-out=", 12) == 0) {
      perfetto_path = argv[i] + 12;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--smoke] [--threads N] [--json out.json] "
                   "[--trace out.json] [--trace-out trace.json]\n",
                   argv[0]);
      return 2;
    }
  }
  if (threads < 1) threads = 1;
  // At least 3 passes even in smoke mode: the gated numbers come from the
  // best pass, and a minimum of one would leave slow modes best-of-one.
  const size_t repetitions = smoke ? 3 : 5;
  // Every timed run lasts at least this long regardless of mode speed.
  const uint64_t min_elapsed_ns = 1000000000;  // 1 s
  if (!trace_path.empty() || !perfetto_path.empty()) {
    util::Tracer::Global().set_enabled(true);
  }

  const bench::ExperimentConfig config = bench::ConfigFromEnv();
  const bench::DataSet dataset = bench::DataSet::kTrec4;
  const corpus::Testbed& bed = bench::GetTestbed(dataset, config);

  std::vector<selection::Query> queries;
  for (const corpus::TestQuery& tq : bed.queries()) {
    queries.push_back(selection::Query{bed.analyzer().Analyze(tq.text)});
  }

  core::MetasearcherOptions serial_options;
  serial_options.num_threads = 1;
  auto serial = bench::BuildMetasearcher(
      dataset,
      bench::SampleFederation(dataset, bench::SamplerKind::kQbs,
                              /*frequency_estimation=*/true, 0, config),
      config, serial_options);
  core::MetasearcherOptions parallel_options;
  parallel_options.num_threads = threads;
  auto parallel = bench::BuildMetasearcher(
      dataset,
      bench::SampleFederation(dataset, bench::SamplerKind::kQbs,
                              /*frequency_estimation=*/true, 0, config),
      config, parallel_options);

  std::printf("Serving throughput: %s, %zu databases, %zu queries, "
              "%zu repetitions\n",
              Name(dataset), serial->num_databases(), queries.size(),
              repetitions);
  std::printf("Threads: serial=1, parallel=%zu\n\n", parallel->num_threads());

  const selection::CoriScorer cori;
  const selection::BglossScorer bgloss;

  bench::BenchReport report("serving_throughput");
  report.SetConfig(config);
  report.AddConfig("threads", static_cast<double>(parallel->num_threads()));
  report.AddConfig("repetitions", static_cast<double>(repetitions));
  report.AddConfig("min_time_s", static_cast<double>(min_elapsed_ns) * 1e-9);
  report.AddConfig("databases", static_cast<double>(serial->num_databases()));
  report.AddConfig("queries", static_cast<double>(queries.size()));
  report.AddConfig("dataset", std::string(Name(dataset)));

  for (core::SummaryMode mode :
       {core::SummaryMode::kPlain, core::SummaryMode::kUniversalShrinkage,
        core::SummaryMode::kAdaptiveShrinkage}) {
    for (const selection::ScoringFunction* scorer :
         std::initializer_list<const selection::ScoringFunction*>{&cori,
                                                                  &bgloss}) {
      if (!VerifyBitIdentical(*serial, *parallel, queries, *scorer, mode)) {
        std::fprintf(stderr,
                     "FAIL: %s/%s parallel ranking differs from serial\n",
                     Name(mode), std::string(scorer->name()).c_str());
        return 1;
      }
      // The serial run owns the gated per-query CPU latency histogram:
      // with one thread every query runs entirely on the calling thread,
      // so ThreadCpuNanos sees all of it. The parallel run records wall
      // latency — informational, since pool work escapes the thread clock.
      util::Histogram cpu_latency_ns;
      util::Histogram wall_latency_ns;
      const TimingResult one =
          TimeSelection(*serial, queries, *scorer, mode, repetitions,
                        min_elapsed_ns, /*wall_latency_ns=*/nullptr,
                        &cpu_latency_ns);
      const TimingResult many =
          TimeSelection(*parallel, queries, *scorer, mode, repetitions,
                        min_elapsed_ns, &wall_latency_ns,
                        /*cpu_latency_ns=*/nullptr);
      std::printf("%-9s %-7s %10.1f qps (1 thread) %10.1f qps (%zu threads)"
                  "  speedup %.2fx  cpu-p95 %.0f us  [bit-identical]\n",
                  Name(mode), std::string(scorer->name()).c_str(),
                  one.wall_qps, many.wall_qps, parallel->num_threads(),
                  one.wall_qps > 0.0 ? many.wall_qps / one.wall_qps : 0.0,
                  cpu_latency_ns.Percentile(95.0) / 1000.0);
      std::fflush(stdout);

      bench::BenchReport::Scenario& scenario = report.AddScenario(
          std::string(Name(mode)) + "/" + std::string(scorer->name()));
      // Gated keys (qps*, p95*) come from CPU time; wall numbers are
      // prefixed so the gate treats them as informational.
      scenario.Add("qps_serial", one.cpu_qps);
      scenario.Add("qps_parallel", many.cpu_qps);
      scenario.Add("wall_qps_serial", one.wall_qps);
      scenario.Add("wall_qps_parallel", many.wall_qps);
      scenario.Add("speedup",
                   one.wall_qps > 0.0 ? many.wall_qps / one.wall_qps : 0.0);
      bench::AppendLatencyPercentilesUs(scenario, cpu_latency_ns);
      scenario.Add("wall_p95_us", wall_latency_ns.Percentile(95.0) / 1000.0);
    }
  }

  const auto serial_stats = serial->posterior_cache_stats();
  const auto parallel_stats = parallel->posterior_cache_stats();
  std::printf("\nPosterior cache: serial %llu hits / %llu misses "
              "(%.1f%% hit rate), parallel %llu hits / %llu misses "
              "(%.1f%% hit rate)\n",
              static_cast<unsigned long long>(serial_stats.hits),
              static_cast<unsigned long long>(serial_stats.misses),
              100.0 * serial_stats.hit_rate(),
              static_cast<unsigned long long>(parallel_stats.hits),
              static_cast<unsigned long long>(parallel_stats.misses),
              100.0 * parallel_stats.hit_rate());

  bench::BenchReport::Scenario& cache_scenario =
      report.AddScenario("posterior_cache");
  cache_scenario.Add("hit_rate_serial", serial_stats.hit_rate());
  cache_scenario.Add("hit_rate_parallel", parallel_stats.hit_rate());
  cache_scenario.Add("entries_serial",
                     static_cast<double>(serial->posterior_cache_size()));
  cache_scenario.Add("entries_parallel",
                     static_cast<double>(parallel->posterior_cache_size()));

  if (!json_path.empty() && !report.WriteFile(json_path)) return 1;
  if (!trace_path.empty()) {
    std::FILE* f = std::fopen(trace_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s for writing\n", trace_path.c_str());
      return 1;
    }
    const std::string json = util::Tracer::Global().ToJson(2);
    std::fwrite(json.data(), 1, json.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
  }
  if (!perfetto_path.empty()) {
    std::FILE* f = std::fopen(perfetto_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s for writing\n",
                   perfetto_path.c_str());
      return 1;
    }
    const std::string json = util::Tracer::Global().ToPerfettoJson(1);
    std::fwrite(json.data(), 1, json.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
  }
  return 0;
}
