// Reproduces Table 8: Spearman rank correlation coefficient between the
// word ranking of the approximate summary and the true summary
// (Section 6.1).

#include "harness/experiment.h"

int main() {
  using namespace fedsearch;
  bench::RunQualityTable(
      "Table 8: Spearman rank correlation coefficient SRCC",
      [](const summary::SummaryQuality& q) { return q.spearman; },
      bench::ConfigFromEnv());
  return 0;
}
