#!/usr/bin/env python3
"""Self-test for check_bench_regression.py.

Builds synthetic baseline/current report pairs — including a seeded 2x
p95 latency inflation and a qps collapse — and asserts the gate passes
and fails exactly where it promises to. Run by ctest (label: lint/bench)
so a regression in the gate itself fails CI even when real bench numbers
are healthy.
"""

from __future__ import annotations

import copy
import importlib.util
import io
import json
import sys
import tempfile
from contextlib import redirect_stderr, redirect_stdout
from pathlib import Path

HERE = Path(__file__).resolve().parent
SPEC = importlib.util.spec_from_file_location(
    "check_bench_regression", HERE / "check_bench_regression.py")
CHECK = importlib.util.module_from_spec(SPEC)
SPEC.loader.exec_module(CHECK)

FAILURES: list[str] = []


def check(name: str, condition: bool, detail: str = "") -> None:
    if condition:
        print(f"  ok: {name}")
    else:
        FAILURES.append(name)
        print(f"FAIL: {name} {detail}")


def make_report(**overrides) -> dict:
    report = {
        "schema_version": 1,
        "bench": "serving_throughput",
        "git_sha": "abc1234",
        "config": {"scale": 0.25, "seed": 7},
        "scenarios": [
            {"name": "plain/CORI",
             "values": {"qps_serial": 2000.0, "qps_parallel": 3000.0,
                        "p95_us": 500.0, "speedup": 1.5}},
            {"name": "adaptive/CORI",
             "values": {"qps_serial": 30.0, "qps_parallel": 32.0,
                        "p95_us": 40000.0}},
        ],
        "metrics": {"counters": {"serving.queries": 100},
                    "gauges": {}, "histograms": {}},
    }
    report.update(overrides)
    return report


def run_main(argv: list[str]) -> tuple[int, str, str]:
    out, err = io.StringIO(), io.StringIO()
    with redirect_stdout(out), redirect_stderr(err):
        status = CHECK.main(["check_bench_regression.py"] + argv)
    return status, out.getvalue(), err.getvalue()


def run_pair(baseline: dict, current: dict,
             extra: list[str] | None = None) -> tuple[int, str, str]:
    with tempfile.TemporaryDirectory() as tmp:
        base_path = Path(tmp) / "baseline.json"
        cur_path = Path(tmp) / "current.json"
        base_path.write_text(json.dumps(baseline), encoding="utf-8")
        cur_path.write_text(json.dumps(current), encoding="utf-8")
        return run_main([str(base_path), str(cur_path)] + (extra or []))


# --- schema validation -----------------------------------------------------

check("valid report has no schema errors",
      CHECK.validate_report(make_report()) == [],
      f"(got {CHECK.validate_report(make_report())})")

check("wrong schema_version is rejected",
      any("schema_version" in e
          for e in CHECK.validate_report(make_report(schema_version=2))))

check("missing scenarios is rejected",
      any("scenarios" in e
          for e in CHECK.validate_report(make_report(scenarios=[]))))

check("non-numeric value is rejected",
      any("not a number" in e for e in CHECK.validate_report(make_report(
          scenarios=[{"name": "x", "values": {"qps": "fast"}}]))))

bad_metrics = make_report(metrics={"counters": {}})
check("metrics without gauges/histograms is rejected",
      any("gauges" in e for e in CHECK.validate_report(bad_metrics)))

status, _, err = run_main(["--validate", "/nonexistent/report.json"])
check("--validate on unreadable file exits 2", status == 2, f"(got {status})")

with tempfile.TemporaryDirectory() as tmp:
    good = Path(tmp) / "good.json"
    good.write_text(json.dumps(make_report()), encoding="utf-8")
    status, out, _ = run_main(["--validate", str(good)])
    check("--validate on valid report exits 0", status == 0,
          f"(got {status})")
    check("--validate reports validity", "valid bench report" in out)

# --- gating ----------------------------------------------------------------

status, out, _ = run_pair(make_report(), make_report())
check("identical reports pass", status == 0, f"(got {status}: {out})")

# Small drift inside tolerance.
drift = copy.deepcopy(make_report())
drift["scenarios"][0]["values"]["qps_serial"] *= 0.90   # -10% < 15% limit
drift["scenarios"][0]["values"]["p95_us"] *= 1.20       # +20% < 25% limit
status, out, _ = run_pair(make_report(), drift)
check("drift within tolerance passes", status == 0, f"(got {status}: {out})")

# Seeded 2x latency inflation must trip the p95 gate.
inflated = copy.deepcopy(make_report())
for scenario in inflated["scenarios"]:
    scenario["values"]["p95_us"] *= 2.0
status, out, _ = run_pair(make_report(), inflated)
check("2x p95 inflation fails", status == 1, f"(got {status}: {out})")
check("2x p95 inflation names the gate", "p95" in out, f"(got {out})")

# qps collapse must trip the qps gate.
slow = copy.deepcopy(make_report())
slow["scenarios"][0]["values"]["qps_parallel"] *= 0.5
status, out, _ = run_pair(make_report(), slow)
check("50% qps drop fails", status == 1, f"(got {status}: {out})")
check("50% qps drop names the key", "qps_parallel" in out, f"(got {out})")

# A qps IMPROVEMENT and a p95 improvement must both pass.
better = copy.deepcopy(make_report())
better["scenarios"][0]["values"]["qps_serial"] *= 3.0
better["scenarios"][0]["values"]["p95_us"] *= 0.3
status, out, _ = run_pair(make_report(), better)
check("improvements pass", status == 0, f"(got {status}: {out})")

# Ungated keys (speedup) may move arbitrarily.
wild = copy.deepcopy(make_report())
wild["scenarios"][0]["values"]["speedup"] = 0.01
status, out, _ = run_pair(make_report(), wild)
check("ungated keys are informational", status == 0,
      f"(got {status}: {out})")

# wall_-prefixed variants are informational: wall time gates on machine
# load, not on the code; only the CPU-time keys (qps*, p95*) gate.
base_wall = copy.deepcopy(make_report())
base_wall["scenarios"][0]["values"]["wall_qps_serial"] = 2000.0
base_wall["scenarios"][0]["values"]["wall_p95_us"] = 500.0
loaded = copy.deepcopy(base_wall)
loaded["scenarios"][0]["values"]["wall_qps_serial"] = 400.0
loaded["scenarios"][0]["values"]["wall_p95_us"] = 5000.0
status, out, _ = run_pair(base_wall, loaded)
check("wall_ keys are informational", status == 0, f"(got {status}: {out})")

# A scenario vanishing from the current report is a failure, not a pass.
missing = copy.deepcopy(make_report())
del missing["scenarios"][1]
status, out, _ = run_pair(make_report(), missing)
check("missing scenario fails", status == 1, f"(got {status}: {out})")
check("missing scenario is named", "adaptive/CORI" in out, f"(got {out})")

# Extra scenarios in the current report are fine (no baseline yet).
extra = copy.deepcopy(make_report())
extra["scenarios"].append(
    {"name": "new/scorer", "values": {"qps_serial": 1.0}})
status, out, _ = run_pair(make_report(), extra)
check("extra current scenario passes", status == 0, f"(got {status}: {out})")

# Micro-scale p95 baselines are informational, not gated: at tens of
# microseconds, scheduler jitter alone exceeds the relative threshold.
tiny = copy.deepcopy(make_report())
tiny["scenarios"][0]["values"]["p95_us"] = 25.0
tiny_inflated = copy.deepcopy(tiny)
tiny_inflated["scenarios"][0]["values"]["p95_us"] = 80.0
status, out, _ = run_pair(tiny, tiny_inflated)
check("p95 below the gating floor is informational", status == 0,
      f"(got {status}: {out})")
check("the floor is reported", "gating floor" in out, f"(got {out})")

# ...but the floor is tunable, and zero restores strict gating.
status, out, _ = run_pair(tiny, tiny_inflated, ["--min-gated-p95-us", "0"])
check("zero floor restores p95 gating", status == 1, f"(got {status}: {out})")

# Custom thresholds are honored.
status, out, _ = run_pair(make_report(), drift,
                          ["--max-qps-drop", "0.05"])
check("tightened qps threshold trips on 10% drop", status == 1,
      f"(got {status}: {out})")

# Malformed current report is a schema error (2), not a gate failure (1).
status, _, err = run_pair(make_report(), {"schema_version": 1})
check("malformed current report exits 2", status == 2, f"(got {status})")

# --- orphan-baseline detection ---------------------------------------------

CI_FIXTURE = """\
run ./build-ci/release/bench/bench_serving --smoke \\
  --json build-ci/release/BENCH_serving.json
run python3 tools/check_bench_regression.py \\
  bench/baselines/BENCH_serving.json build-ci/release/BENCH_serving.json
"""


def run_orphans(ci_text: str, baselines: list[str]) -> tuple[int, str, str]:
    with tempfile.TemporaryDirectory() as tmp:
        ci = Path(tmp) / "ci.sh"
        ci.write_text(ci_text, encoding="utf-8")
        bdir = Path(tmp) / "baselines"
        bdir.mkdir()
        for name in baselines:
            (bdir / name).write_text("{}", encoding="utf-8")
        return run_main(["--check-orphans", str(ci), str(bdir)])


status, out, _ = run_orphans(CI_FIXTURE, ["BENCH_serving.json"])
check("gated baseline passes orphan check", status == 0,
      f"(got {status}: {out})")

status, _, err = run_orphans(
    CI_FIXTURE, ["BENCH_serving.json", "BENCH_forgotten.json"])
check("ungated baseline fails orphan check", status == 1, f"(got {status})")
check("orphan baseline is named", "BENCH_forgotten.json" in err,
      f"(got {err})")

# A build-output mention (current side of a gate) must NOT count as a
# baseline reference.
status, _, err = run_orphans(
    CI_FIXTURE + "run foo build-ci/release/BENCH_other.json\n",
    ["BENCH_serving.json", "BENCH_other.json"])
check("build-output mention does not gate a baseline", status == 1,
      f"(got {status})")

# The reverse direction: a referenced baseline that is gone from disk.
status, _, err = run_orphans(CI_FIXTURE, [])
check("missing referenced baseline fails", status == 1, f"(got {status})")
check("missing referenced baseline is named", "BENCH_serving.json" in err,
      f"(got {err})")

status, _, err = run_main(
    ["--check-orphans", "/nonexistent/ci.sh", "/nonexistent/baselines"])
check("unreadable ci script exits 2", status == 2, f"(got {status})")

# The repo's own wiring must be clean (run from the repo root by ci.sh,
# from anywhere by ctest — resolve paths relative to this file).
status, out, err = run_main(
    ["--check-orphans", str(HERE.parent / "ci.sh"),
     str(HERE.parent / "bench" / "baselines")])
check("repo baselines are all gated", status == 0,
      f"(got {status}: {out}{err})")

print()
if FAILURES:
    print(f"check_bench_regression_selftest: {len(FAILURES)} check(s) FAILED")
    sys.exit(1)
print("check_bench_regression_selftest: all checks passed")
