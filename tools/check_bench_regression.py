#!/usr/bin/env python3
"""Perf-regression gate over schema-versioned BENCH_*.json reports.

Compares a current bench report against a committed baseline
(bench/baselines/) and fails when a gated value regressed beyond
tolerance. The gate semantics live in the value keys, so benches opt
into gating simply by how they name their scenario values:

  * keys starting with "qps"    — higher is better; fail when the
                                  current value drops more than
                                  --max-qps-drop (default 15%),
  * keys starting with "p95"    — lower is better; fail when the current
                                  value grows more than --max-p95-growth
                                  (default 25%). By schema convention p95
                                  keys are microseconds (p95_us); baselines
                                  below --min-gated-p95-us (default 100)
                                  are informational, not gated — at
                                  tens-of-microseconds scale, scheduler
                                  jitter alone exceeds any sane relative
                                  threshold.

Every other key is informational; benches exploit that by prefixing
load-sensitive wall-clock variants (wall_qps_serial, wall_p95_us) so
only their CPU-time counterparts gate. A scenario present in the baseline
must exist in the current report (a silently vanished scenario is a
gate bypass, not a pass). Extra scenarios in the current report are
allowed — they gate nothing until a new baseline is recorded.

Usage:
  check_bench_regression.py BASELINE.json CURRENT.json [options]
  check_bench_regression.py --validate REPORT.json
  check_bench_regression.py --check-orphans CI_SCRIPT BASELINE_DIR

--check-orphans closes the other gate bypass: a committed baseline that
no CI job compares against gates nothing — it silently rots while the
bench it froze regresses. The check cross-references bench/baselines/
against the CI driver script: every BENCH_*.json under the baseline
directory must be referenced by some job, and every baseline path the
script references must exist on disk.

Exit codes: 0 pass, 1 regression / missing scenario / orphan baseline,
2 malformed report / unreadable file. Importable as a module; the
self-test (check_bench_regression_selftest.py) drives main() in-process.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path

SCHEMA_VERSION = 1

DEFAULT_MAX_QPS_DROP = 0.15
DEFAULT_MAX_P95_GROWTH = 0.25
DEFAULT_MIN_GATED_P95_US = 100.0


def is_number(value) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def validate_report(report) -> list[str]:
    """Structural schema check; returns a list of problems (empty = valid)."""
    errors: list[str] = []
    if not isinstance(report, dict):
        return ["report is not a JSON object"]
    if report.get("schema_version") != SCHEMA_VERSION:
        errors.append(
            f"schema_version is {report.get('schema_version')!r}, "
            f"expected {SCHEMA_VERSION}")
    for key in ("bench", "git_sha"):
        if not isinstance(report.get(key), str) or not report.get(key):
            errors.append(f"missing or non-string {key!r}")
    if not isinstance(report.get("config"), dict):
        errors.append("missing or non-object 'config'")
    scenarios = report.get("scenarios")
    if not isinstance(scenarios, list) or not scenarios:
        errors.append("missing, non-array, or empty 'scenarios'")
        scenarios = []
    seen_names = set()
    for i, scenario in enumerate(scenarios):
        if not isinstance(scenario, dict):
            errors.append(f"scenarios[{i}] is not an object")
            continue
        name = scenario.get("name")
        if not isinstance(name, str) or not name:
            errors.append(f"scenarios[{i}] has no name")
            continue
        if name in seen_names:
            errors.append(f"duplicate scenario name {name!r}")
        seen_names.add(name)
        values = scenario.get("values")
        if not isinstance(values, dict):
            errors.append(f"scenario {name!r} has no 'values' object")
            continue
        for key, value in values.items():
            if not is_number(value):
                errors.append(
                    f"scenario {name!r} value {key!r} is not a number")
    metrics = report.get("metrics")
    if not isinstance(metrics, dict):
        errors.append("missing or non-object 'metrics'")
    else:
        for section in ("counters", "gauges", "histograms"):
            if not isinstance(metrics.get(section), dict):
                errors.append(f"metrics has no {section!r} object")
    return errors


def load_report(path: str) -> tuple[dict | None, list[str]]:
    try:
        with open(path, encoding="utf-8") as f:
            report = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return None, [f"{path}: {e}"]
    errors = [f"{path}: {e}" for e in validate_report(report)]
    return (report if not errors else None), errors


def gate_for_key(key: str) -> str | None:
    """'qps' (higher-better), 'p95' (lower-better), or None (ungated)."""
    if key.startswith("qps"):
        return "qps"
    if key.startswith("p95"):
        return "p95"
    return None


def compare(baseline: dict, current: dict,
            max_qps_drop: float = DEFAULT_MAX_QPS_DROP,
            max_p95_growth: float = DEFAULT_MAX_P95_GROWTH,
            min_gated_p95_us: float = DEFAULT_MIN_GATED_P95_US,
            log=print) -> list[str]:
    """Gates `current` against `baseline`; returns failure descriptions."""
    failures: list[str] = []
    current_by_name = {s["name"]: s["values"] for s in current["scenarios"]}
    for scenario in baseline["scenarios"]:
        name = scenario["name"]
        if name not in current_by_name:
            failures.append(f"scenario {name!r} missing from current report")
            log(f"FAIL {name}: missing from current report")
            continue
        values = current_by_name[name]
        for key, base in scenario["values"].items():
            gate = gate_for_key(key)
            if gate is None or key not in values or base <= 0:
                continue
            cur = values[key]
            if gate == "qps":
                drop = (base - cur) / base
                if drop > max_qps_drop:
                    failures.append(
                        f"{name}/{key}: qps dropped {drop:.1%} "
                        f"({base:.1f} -> {cur:.1f}), limit {max_qps_drop:.0%}")
                    log(f"FAIL {name}/{key}: {base:.1f} -> {cur:.1f} "
                        f"({-drop:+.1%}, limit -{max_qps_drop:.0%})")
                else:
                    log(f"  ok {name}/{key}: {base:.1f} -> {cur:.1f} "
                        f"({-drop:+.1%})")
            else:
                growth = (cur - base) / base
                if base < min_gated_p95_us:
                    log(f"info {name}/{key}: {base:.1f} -> {cur:.1f} "
                        f"({growth:+.1%}; below {min_gated_p95_us:.0f} us "
                        f"gating floor, informational)")
                elif growth > max_p95_growth:
                    failures.append(
                        f"{name}/{key}: p95 grew {growth:.1%} "
                        f"({base:.1f} -> {cur:.1f}), "
                        f"limit {max_p95_growth:.0%}")
                    log(f"FAIL {name}/{key}: {base:.1f} -> {cur:.1f} "
                        f"({growth:+.1%}, limit +{max_p95_growth:.0%})")
                else:
                    log(f"  ok {name}/{key}: {base:.1f} -> {cur:.1f} "
                        f"({growth:+.1%})")
    return failures


def check_orphans(ci_script: str, baseline_dir: str,
                  log=print) -> list[str]:
    """Cross-references committed baselines against the CI driver.

    Returns problem descriptions: baselines on disk that the CI script
    never mentions (ungated — dead weight that LOOKS like a gate), and
    baseline paths the script references that do not exist (the job
    would fail at runtime; catch it in lint instead).
    """
    problems: list[str] = []
    ci_text = Path(ci_script).read_text(encoding="utf-8")
    dir_path = Path(baseline_dir)
    # Only bench/baselines/-style references count: the CI script also
    # names BENCH_*.json build outputs (the CURRENT side of each gate),
    # which say nothing about whether the committed baseline is wired up.
    referenced = set(
        re.findall(rf"{re.escape(dir_path.name)}/(BENCH_\w+\.json)", ci_text))
    on_disk = sorted(p.name for p in dir_path.glob("BENCH_*.json"))
    for name in on_disk:
        if name in referenced:
            log(f"  ok {dir_path / name}: referenced by {ci_script}")
        else:
            problems.append(
                f"orphan baseline {dir_path / name}: no job in {ci_script} "
                f"references it, so it gates nothing")
    # The reverse direction: a referenced baseline whose file is gone
    # (renamed baseline, stale job).
    for ref in sorted(referenced):
        if ref not in on_disk:
            problems.append(
                f"{ci_script} references {ref} but {dir_path / ref} "
                f"does not exist")
    return problems


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog=argv[0], description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("reports", nargs="*",
                        help="BASELINE.json CURRENT.json")
    parser.add_argument("--validate", metavar="REPORT",
                        help="only schema-check the given report")
    parser.add_argument("--check-orphans", nargs=2,
                        metavar=("CI_SCRIPT", "BASELINE_DIR"),
                        help="fail if a BENCH_*.json under BASELINE_DIR is "
                             "gated by no job in CI_SCRIPT, or a referenced "
                             "baseline is missing")
    parser.add_argument("--max-qps-drop", type=float,
                        default=DEFAULT_MAX_QPS_DROP,
                        help="allowed fractional qps drop (default %(default)s)")
    parser.add_argument("--max-p95-growth", type=float,
                        default=DEFAULT_MAX_P95_GROWTH,
                        help="allowed fractional p95 latency growth "
                             "(default %(default)s)")
    parser.add_argument("--min-gated-p95-us", type=float,
                        default=DEFAULT_MIN_GATED_P95_US,
                        help="p95 baselines below this many microseconds "
                             "are informational, not gated "
                             "(default %(default)s)")
    args = parser.parse_args(argv[1:])

    if args.check_orphans is not None:
        if args.reports or args.validate is not None:
            parser.error("--check-orphans takes no other reports")
        ci_script, baseline_dir = args.check_orphans
        try:
            problems = check_orphans(ci_script, baseline_dir)
        except OSError as e:
            print(f"{ci_script}: {e}", file=sys.stderr)
            return 2
        for problem in problems:
            print(f"FAIL {problem}", file=sys.stderr)
        if problems:
            print(f"\ncheck_bench_regression: {len(problems)} orphan "
                  f"check(s) FAILED")
            return 1
        print("\ncheck_bench_regression: every baseline is gated")
        return 0

    if args.validate is not None:
        if args.reports:
            parser.error("--validate takes no positional reports")
        _, errors = load_report(args.validate)
        for error in errors:
            print(error, file=sys.stderr)
        if not errors:
            print(f"{args.validate}: valid bench report "
                  f"(schema_version {SCHEMA_VERSION})")
        return 2 if errors else 0

    if len(args.reports) != 2:
        parser.error("expected BASELINE.json CURRENT.json")
    baseline, errors = load_report(args.reports[0])
    current, current_errors = load_report(args.reports[1])
    errors += current_errors
    if errors:
        for error in errors:
            print(error, file=sys.stderr)
        return 2

    print(f"baseline: {args.reports[0]} (git {baseline['git_sha']})")
    print(f"current:  {args.reports[1]} (git {current['git_sha']})")
    failures = compare(baseline, current, args.max_qps_drop,
                       args.max_p95_growth, args.min_gated_p95_us)
    if failures:
        print(f"\ncheck_bench_regression: {len(failures)} gate(s) FAILED")
        return 1
    print("\ncheck_bench_regression: all gates passed")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
