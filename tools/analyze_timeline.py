#!/usr/bin/env python3
"""Latency attribution over fedsearch trace timelines.

Ingests either trace export the tracer produces:

  * the Chrome-trace/Perfetto form (util::Tracer::ToPerfettoJson, written by
    bench_broker --trace-out): {"displayTimeUnit", "otherData", "traceEvents"}
    with one ph:"X" event per span and ids/attributes under "args";
  * the raw span form (util::Tracer::ToJson, written by
    bench_serving_throughput --trace): {"schema_version", "dropped",
    "capacity", "spans"}.

For every traced request (a span tree rooted at "broker_submit") the root
span's attributes carry the broker's full virtual latency account, so the
analyzer attributes each request's client-observed wall time exactly:

  queue     time between arrival and a worker reaching the request
            (clamped at e2e: a request that expired in queue spent its
            whole client-observed life queued);
  service   worker occupancy that produced an answer (for served
            requests) or was wasted (for requests that expired mid-
            execution anyway) — reported per disposition;
  retry     backoff inside service, from retry_backoff spans' backoff_ms;
  overhang  e2e - queue - service; zero by construction on the broker's
            virtual schedule, nonzero only for foreign/partial timelines.

queue + service + overhang == e2e for every disposition, so coverage is
100% whenever the account is intact; the analyzer reports the minimum
per-request coverage and fails its --selftest below 95%.

The summary flags two pathologies:
  * queueing-dominated regime: aggregate queue share > 50% — adding
    capacity or shedding earlier beats optimizing service time;
  * truncated timeline: the tracer dropped spans at capacity, so the
    attribution is partial.

Timelines with no broker_submit spans (e.g. bench_serving_throughput
traces) fall back to a per-span-name duration profile.

Usage:
  analyze_timeline.py trace.json [--json]
  analyze_timeline.py --selftest

Exit status: 0 on success, 1 on invalid/empty input or selftest failure.
"""

from __future__ import annotations

import json
import os
import sys

QUEUE_DOMINATED_SHARE = 0.5

# Must match broker::DispositionName.
DISPOSITIONS = [
    "served_full",
    "served_degraded",
    "shed_queue_full",
    "shed_predicted_miss",
    "expired_in_queue",
    "expired_executing",
    "cancelled_shutdown",
]


class TimelineError(ValueError):
    """Invalid or empty timeline input."""


def load_spans(doc):
    """Normalizes either export form to (spans, meta).

    Each span is a dict with name, trace_id, span_id, parent_id, ts_us,
    dur_us, and attrs; meta carries dropped/capacity.
    """
    if not isinstance(doc, dict):
        raise TimelineError("timeline root is not a JSON object")
    if "traceEvents" in doc:
        meta = doc.get("otherData", {})
        spans = []
        for event in doc["traceEvents"]:
            if event.get("ph") != "X":
                continue
            args = dict(event.get("args", {}))
            spans.append({
                "name": event.get("name", ""),
                "trace_id": args.pop("trace_id", 0),
                "span_id": args.pop("span_id", 0),
                "parent_id": args.pop("parent_id", 0),
                "ts_us": float(event.get("ts", 0.0)),
                "dur_us": float(event.get("dur", 0.0)),
                "attrs": args,
            })
    elif "spans" in doc:
        meta = doc
        spans = []
        for raw in doc["spans"]:
            spans.append({
                "name": raw.get("name", ""),
                "trace_id": raw.get("trace_id", 0),
                "span_id": raw.get("span_id", 0),
                "parent_id": raw.get("parent_id", 0),
                "ts_us": float(raw.get("ts_us", 0.0)),
                "dur_us": float(raw.get("dur_us", 0.0)),
                "attrs": dict(raw.get("attrs", {})),
            })
    else:
        raise TimelineError(
            "unrecognized timeline schema (no traceEvents or spans)")
    if not spans:
        raise TimelineError("timeline contains no spans")
    return spans, {
        "dropped": int(meta.get("dropped", 0)),
        "capacity": int(meta.get("capacity", 0)),
    }


def _new_bucket():
    return {
        "count": 0,
        "e2e_ms": 0.0,
        "queue_ms": 0.0,
        "service_ms": 0.0,
        "retry_ms": 0.0,
        "overhang_ms": 0.0,
    }


def analyze(spans, meta):
    """Builds the attribution summary dict from normalized spans."""
    by_trace = {}
    for span in spans:
        by_trace.setdefault(span["trace_id"], []).append(span)
    by_trace.pop(0, None)  # anonymous spans outside any request

    total = _new_bucket()
    by_disposition = {}
    min_coverage = 1.0
    requests = 0
    for trace_spans in by_trace.values():
        root = next(
            (s for s in trace_spans if s["name"] == "broker_submit"), None)
        if root is None:
            continue
        requests += 1
        attrs = root["attrs"]
        disposition = attrs.get("disposition", "unknown")
        e2e = float(attrs.get("e2e_ms", 0.0))
        queue = min(float(attrs.get("queue_wait_ms", 0.0)), e2e)
        service = float(attrs.get("service_ms", 0.0))
        retry = sum(
            float(s["attrs"].get("backoff_ms", 0.0))
            for s in trace_spans if s["name"] == "retry_backoff")
        retry = min(retry, service)
        overhang = max(e2e - queue - service, 0.0)
        covered = queue + service + overhang
        coverage = min(covered / e2e, 1.0) if e2e > 0.0 else 1.0
        min_coverage = min(min_coverage, coverage)
        for bucket in (total, by_disposition.setdefault(
                disposition, _new_bucket())):
            bucket["count"] += 1
            bucket["e2e_ms"] += e2e
            bucket["queue_ms"] += queue
            bucket["service_ms"] += service
            bucket["retry_ms"] += retry
            bucket["overhang_ms"] += overhang

    denom = total["e2e_ms"] if total["e2e_ms"] > 0.0 else 1.0
    queue_share = total["queue_ms"] / denom
    summary = {
        "spans": len(spans),
        "dropped": meta["dropped"],
        "capacity": meta["capacity"],
        "requests": requests,
        "total": total,
        "by_disposition": by_disposition,
        "queue_share": queue_share,
        "service_share": total["service_ms"] / denom,
        "min_coverage": min_coverage if requests else 0.0,
        "queueing_dominated": (requests > 0 and total["e2e_ms"] > 0.0 and
                               queue_share > QUEUE_DOMINATED_SHARE),
        "truncated": meta["dropped"] > 0 or (
            meta["capacity"] > 0 and len(spans) >= meta["capacity"]),
    }
    if requests == 0:
        profile = {}
        for span in spans:
            entry = profile.setdefault(span["name"], [0, 0.0])
            entry[0] += 1
            entry[1] += span["dur_us"]
        summary["span_profile"] = {
            name: {"count": c, "total_us": us}
            for name, (c, us) in sorted(
                profile.items(), key=lambda kv: -kv[1][1])
        }
    return summary


def _share(bucket, key):
    denom = bucket["e2e_ms"] if bucket["e2e_ms"] > 0.0 else 1.0
    return bucket[key] / denom


def format_summary(summary):
    lines = []
    lines.append(
        f"Timeline: {summary['spans']} spans, {summary['requests']} traced "
        f"requests, {summary['dropped']} dropped "
        f"(capacity {summary['capacity']})")
    if summary["requests"] == 0:
        lines.append("No broker requests; per-span-name profile:")
        for name, entry in list(summary["span_profile"].items())[:15]:
            lines.append(f"  {name:<28} x{entry['count']:<7} "
                         f"{entry['total_us'] / 1000.0:10.2f} ms total")
    else:
        total = summary["total"]
        lines.append(
            f"Attribution over {total['count']} requests "
            f"(client-observed total {total['e2e_ms']:.1f} ms, "
            f"min per-request coverage "
            f"{summary['min_coverage'] * 100.0:.1f}%):")
        lines.append(f"  queue    {_share(total, 'queue_ms') * 100.0:5.1f}%")
        lines.append(f"  service  {_share(total, 'service_ms') * 100.0:5.1f}%"
                     f"  (retry backoff "
                     f"{_share(total, 'retry_ms') * 100.0:.1f}%)")
        lines.append(
            f"  overhang {_share(total, 'overhang_ms') * 100.0:5.1f}%")
        lines.append("Per disposition:")
        lines.append(f"  {'disposition':<20} {'count':>6} {'mean e2e ms':>12} "
                     f"{'queue%':>7} {'service%':>9}")
        known = [d for d in DISPOSITIONS if d in summary["by_disposition"]]
        extra = [d for d in sorted(summary["by_disposition"])
                 if d not in DISPOSITIONS]
        for disposition in known + extra:
            bucket = summary["by_disposition"][disposition]
            mean_e2e = bucket["e2e_ms"] / bucket["count"]
            lines.append(
                f"  {disposition:<20} {bucket['count']:>6} {mean_e2e:>12.2f} "
                f"{_share(bucket, 'queue_ms') * 100.0:>6.1f} "
                f"{_share(bucket, 'service_ms') * 100.0:>8.1f}")
    if summary["queueing_dominated"]:
        lines.append(
            f"WARNING: queueing-dominated regime (queue share "
            f"{summary['queue_share'] * 100.0:.0f}% > "
            f"{QUEUE_DOMINATED_SHARE * 100.0:.0f}%) — add capacity or shed "
            f"earlier; service-time optimization won't move the tail")
    if summary["truncated"]:
        lines.append(
            f"WARNING: truncated timeline ({summary['dropped']} spans "
            f"dropped at capacity {summary['capacity']}) — attribution is "
            f"partial")
    return "\n".join(lines)


def analyze_file(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        raise TimelineError(f"{path}: {err}") from err
    spans, meta = load_spans(doc)
    return analyze(spans, meta)


def selftest():
    fixtures = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                            "fixtures")
    failures = []

    def check(name, condition, detail):
        if condition:
            print(f"PASS {name}")
        else:
            failures.append(name)
            print(f"FAIL {name}: {detail}")

    healthy_path = os.path.join(fixtures, "timeline_healthy.json")
    healthy = analyze_file(healthy_path)
    check("healthy.requests", healthy["requests"] == 3,
          f"want 3 requests, got {healthy['requests']}")
    check("healthy.coverage", healthy["min_coverage"] >= 0.95,
          f"min coverage {healthy['min_coverage']:.3f} < 0.95")
    check("healthy.not_queue_dominated", not healthy["queueing_dominated"],
          f"queue share {healthy['queue_share']:.3f} flagged dominated")
    check("healthy.not_truncated", not healthy["truncated"],
          "healthy fixture flagged truncated")
    check("healthy.retry_attributed", healthy["total"]["retry_ms"] > 0.0,
          "retry_backoff span not attributed")
    check("healthy.dispositions",
          healthy["by_disposition"].get("served_full", {}).get("count")
          == 2 and
          healthy["by_disposition"].get("served_degraded", {}).get("count")
          == 1,
          f"got {sorted(healthy['by_disposition'])}")

    collapsed = analyze_file(os.path.join(fixtures,
                                          "timeline_collapsed.json"))
    check("collapsed.queue_dominated", collapsed["queueing_dominated"],
          f"queue share {collapsed['queue_share']:.3f} not flagged")
    check("collapsed.truncated", collapsed["truncated"],
          "dropped spans not flagged as truncation")
    check("collapsed.coverage", collapsed["min_coverage"] >= 0.95,
          f"min coverage {collapsed['min_coverage']:.3f} < 0.95")
    check("collapsed.expired_in_queue",
          collapsed["by_disposition"].get("expired_in_queue", {}).get(
              "count") == 3,
          f"got {sorted(collapsed['by_disposition'])}")

    # The raw ToJson schema must ingest to the same analysis as Perfetto.
    with open(healthy_path, "r", encoding="utf-8") as f:
        perfetto = json.load(f)
    raw = {"schema_version": 2,
           "dropped": perfetto["otherData"]["dropped"],
           "capacity": perfetto["otherData"]["capacity"],
           "spans": []}
    for event in perfetto["traceEvents"]:
        if event.get("ph") != "X":
            continue
        args = dict(event["args"])
        raw["spans"].append({
            "name": event["name"],
            "trace_id": args.pop("trace_id"),
            "span_id": args.pop("span_id"),
            "parent_id": args.pop("parent_id"),
            "ts_us": event["ts"], "dur_us": event["dur"],
            "attrs": args,
        })
    raw_summary = analyze(*load_spans(raw))
    check("raw_schema.matches", raw_summary["total"] == healthy["total"],
          "raw-schema ingestion diverged from Perfetto ingestion")

    for bad in ({}, {"traceEvents": []}, {"spans": []}):
        try:
            load_spans(bad)
            check("invalid.rejected", False, f"{bad!r} accepted")
            break
        except TimelineError:
            pass
    else:
        check("invalid.rejected", True, "")

    if failures:
        print(f"selftest: {len(failures)} failure(s)")
        return 1
    print("selftest: all checks passed")
    return 0


def main(argv):
    if "--selftest" in argv:
        return selftest()
    want_json = "--json" in argv
    paths = [a for a in argv if not a.startswith("--")]
    if len(paths) != 1:
        print("usage: analyze_timeline.py trace.json [--json] | --selftest",
              file=sys.stderr)
        return 2
    try:
        summary = analyze_file(paths[0])
    except TimelineError as err:
        print(f"error: {err}", file=sys.stderr)
        return 1
    if want_json:
        print(json.dumps(summary, indent=2, sort_keys=True))
    else:
        print(format_summary(summary))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
