#!/usr/bin/env python3
"""Self-test for lint_determinism.py.

Seeds a synthetic source tree with known violations and known-clean code,
then asserts the linter flags exactly the lines it promises to flag. Run
by ctest (label: lint) so a regression in the lint rules fails CI even
when the real tree is clean.
"""

from __future__ import annotations

import importlib.util
import io
import sys
import tempfile
from contextlib import redirect_stderr, redirect_stdout
from pathlib import Path

HERE = Path(__file__).resolve().parent
SPEC = importlib.util.spec_from_file_location(
    "lint_determinism", HERE / "lint_determinism.py")
LINT = importlib.util.module_from_spec(SPEC)
SPEC.loader.exec_module(LINT)

FAILURES: list[str] = []


def run_lint(root: Path) -> tuple[int, str]:
    out, err = io.StringIO(), io.StringIO()
    with redirect_stdout(out), redirect_stderr(err):
        status = LINT.main(["lint_determinism.py", str(root)])
    return status, out.getvalue()


def check(name: str, condition: bool, detail: str = "") -> None:
    if condition:
        print(f"  ok: {name}")
    else:
        FAILURES.append(name)
        print(f"FAIL: {name} {detail}")


def expect_findings(name: str, rel_path: str, code: str,
                    expected_fragments: list[str]) -> None:
    """Lint `code` at `rel_path` inside a scratch tree; expect each fragment
    (and only as many findings as fragments)."""
    with tempfile.TemporaryDirectory() as tmp:
        src = Path(tmp) / "src"
        target = src / rel_path
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(code, encoding="utf-8")
        status, output = run_lint(src)
        want_status = 1 if expected_fragments else 0
        check(f"{name}: exit status {want_status}", status == want_status,
              f"(got {status}, output: {output!r})")
        findings = [line for line in output.splitlines() if line.strip()]
        check(f"{name}: {len(expected_fragments)} finding(s)",
              len(findings) == len(expected_fragments),
              f"(got {findings})")
        for fragment in expected_fragments:
            check(f"{name}: mentions {fragment!r}",
                  any(fragment in f for f in findings), f"(got {findings})")


# --- Rule 1: ambient randomness -------------------------------------------

expect_findings(
    "std::rand", "fedsearch/sampling/bad_rand.cc",
    "int Draw() { return std::rand() % 6; }\n",
    ["std::rand"])

expect_findings(
    "srand + time seed", "fedsearch/sampling/bad_seed.cc",
    "void Init() { srand(time(nullptr)); }\n",
    ["std::rand/srand", "wall-clock"])

expect_findings(
    "random_device", "fedsearch/core/bad_entropy.cc",
    "std::random_device rd;\n",
    ["random_device"])

expect_findings(
    "raw mt19937 engine", "fedsearch/text/bad_engine.cc",
    "std::mt19937 gen(42);\n",
    ["raw <random> engines"])

expect_findings(
    "chrono-seeded rng", "fedsearch/util/bad_clock_seed.cc",
    "auto seed = std::chrono::steady_clock::now().time_since_epoch();\n",
    ["time-seeded"])

expect_findings(
    "chrono now without rng context is fine", "fedsearch/util/latency.cc",
    "auto t0 = std::chrono::steady_clock::now();\n",
    [])

expect_findings(
    "util/rng.cc may own an engine", "fedsearch/util/rng.cc",
    "std::mt19937_64 engine_;  // wrapped behind deterministic seeding\n",
    [])

expect_findings(
    "violations inside comments are ignored", "fedsearch/core/commented.cc",
    "// std::rand() would be wrong here; we use util::Rng instead\n"
    "/* std::random_device is also banned */\n",
    [])

expect_findings(
    "operand( does not trip the rand( pattern", "fedsearch/util/ops.cc",
    "int x = operand(3);\n",
    [])

# --- Rule 2: order-dependent iteration ------------------------------------

expect_findings(
    "unannotated unordered range-for in selection/", "fedsearch/selection/bad.cc",
    "std::unordered_map<std::string, double> weights_;\n"
    "double Sum() {\n"
    "  double total = 0.0;\n"
    "  for (const auto& [w, v] : weights_) total += v;\n"
    "  return total;\n"
    "}\n",
    ["range-for over unordered container"])

expect_findings(
    "ORDER-INDEPENDENT escape hatch suppresses", "fedsearch/selection/ok.cc",
    "std::unordered_map<std::string, double> weights_;\n"
    "double Sum() {\n"
    "  double total = 0.0;\n"
    "  // ORDER-INDEPENDENT: integer counts, addition is exact\n"
    "  for (const auto& [w, v] : weights_) total += v;\n"
    "  return total;\n"
    "}\n",
    [])

expect_findings(
    "marker anywhere in the comment block above counts",
    "fedsearch/selection/block_comment.cc",
    "std::unordered_map<std::string, double> weights_;\n"
    "double Sum() {\n"
    "  double total = 0.0;\n"
    "  // ORDER-INDEPENDENT: the reduction below only counts entries,\n"
    "  // and integer addition is exact regardless of visit order.\n"
    "  for (const auto& [w, v] : weights_) total += 1.0;\n"
    "  return total;\n"
    "}\n",
    [])

expect_findings(
    "unannotated unordered range-for in broker/", "fedsearch/broker/bad.cc",
    "std::unordered_map<size_t, double> inflight_;\n"
    "double Backlog() {\n"
    "  double total = 0.0;\n"
    "  for (const auto& [seq, cost] : inflight_) total += cost;\n"
    "  return total;\n"
    "}\n",
    ["range-for over unordered container"])

expect_findings(
    "ORDER-INDEPENDENT escape hatch works in broker/",
    "fedsearch/broker/ok.cc",
    "std::unordered_set<size_t> pending_;\n"
    "size_t Depth() {\n"
    "  size_t n = 0;\n"
    "  // ORDER-INDEPENDENT: counting elements, no floating accumulation\n"
    "  for (size_t seq : pending_) n += (seq != 0);\n"
    "  return n;\n"
    "}\n",
    [])

expect_findings(
    "broker/ may not read the clock either", "fedsearch/broker/bad_clock.cc",
    "double NowMs() {\n"
    "  return std::chrono::steady_clock::now().time_since_epoch().count();\n"
    "}\n",
    ["direct clock read outside util/"])

expect_findings(
    "core/shrinkage.cc is restricted", "fedsearch/core/shrinkage.cc",
    "std::unordered_set<int> ids;\n"
    "void Visit() { for (int id : ids) Use(id); }\n",
    ["range-for over unordered container"])

expect_findings(
    "sampling/refresh_scheduler.cc is restricted",
    "fedsearch/sampling/refresh_scheduler.cc",
    "std::unordered_map<size_t, double> drift_rate_;\n"
    "size_t PickNext() {\n"
    "  size_t best = 0;\n"
    "  for (const auto& [db, rate] : drift_rate_) best = db;\n"
    "  return best;\n"
    "}\n",
    ["range-for over unordered container"])

expect_findings(
    "corpus/churn.cc is restricted", "fedsearch/corpus/churn.cc",
    "std::unordered_set<size_t> changed_;\n"
    "void Emit() { for (size_t db : changed_) Publish(db); }\n",
    ["range-for over unordered container"])

expect_findings(
    "core/live_metasearcher.cc is restricted",
    "fedsearch/core/live_metasearcher.cc",
    "std::unordered_map<size_t, int> pending_;\n"
    "void Apply() { for (const auto& kv : pending_) Use(kv); }\n",
    ["range-for over unordered container"])

expect_findings(
    "other sampling TUs may iterate unordered",
    "fedsearch/sampling/qbs_sampler.cc",
    "std::unordered_map<std::string, int> seen_;\n"
    "void Dump() { for (const auto& kv : seen_) Use(kv); }\n",
    [])

expect_findings(
    "deref of unordered pointer is caught", "fedsearch/selection/deref.cc",
    "std::unordered_map<int, int>* live_ = nullptr;\n"
    "void Walk() { for (const auto& kv : *live_) Use(kv); }\n",
    ["range-for over unordered container"])

expect_findings(
    "unrestricted TUs may iterate unordered", "fedsearch/summary/fine.cc",
    "std::unordered_map<std::string, int> counts_;\n"
    "void Dump() { for (const auto& kv : counts_) Use(kv); }\n",
    [])

expect_findings(
    "ordered containers are fine in selection/", "fedsearch/selection/sorted.cc",
    "std::map<std::string, double> weights_;\n"
    "double Sum() {\n"
    "  double total = 0.0;\n"
    "  for (const auto& [w, v] : weights_) total += v;\n"
    "  return total;\n"
    "}\n",
    [])

# --- Rule 3: direct clock reads outside util/ ------------------------------

expect_findings(
    "steady_clock::now outside util/", "fedsearch/core/bad_timer.cc",
    "auto t0 = std::chrono::steady_clock::now();\n",
    ["direct clock read outside util/"])

expect_findings(
    "system_clock::now outside util/", "fedsearch/sampling/bad_wallclock.cc",
    "const auto stamp = std::chrono::system_clock::now();\n",
    ["direct clock read outside util/"])

expect_findings(
    "high_resolution_clock::now outside util/",
    "fedsearch/selection/bad_hrc.cc",
    "auto t = std::chrono::high_resolution_clock::now();\n",
    ["direct clock read outside util/"])

expect_findings(
    "util/ may read the clock (MonotonicNanos lives there)",
    "fedsearch/util/metrics_impl.cc",
    "uint64_t MonotonicNanos() {\n"
    "  return std::chrono::steady_clock::now().time_since_epoch().count();\n"
    "}\n",
    [])

expect_findings(
    "clock reads in comments are ignored", "fedsearch/core/commented_clock.cc",
    "// steady_clock::now() is banned here; use util::MonotonicNanos()\n",
    [])

# --- Rule 4: telemetry read-back outside util/ -----------------------------

expect_findings(
    "span timestamp read in broker/", "fedsearch/broker/bad_readback.cc",
    "double Budget(const util::Tracer::Span& span) {\n"
    "  return 100.0 - span.duration_ns / 1e6;\n"
    "}\n",
    ["recorded span timestamp"])

expect_findings(
    "span start read in core/", "fedsearch/core/bad_start.cc",
    "uint64_t Epoch(const util::Tracer::Span& s) { return s.start_ns; }\n",
    ["recorded span timestamp"])

expect_findings(
    "tracer snapshot pulled in selection/", "fedsearch/selection/bad_pull.cc",
    "size_t SpansSoFar() { return util::Tracer::Global().snapshot().size(); }\n",
    ["pulls the recorded span/metric buffer"])

expect_findings(
    "percentile computed in broker/", "fedsearch/broker/bad_p99.cc",
    "double Tail() { return Percentile(latencies_, 99.0); }\n",
    ["latency aggregate in src/"])

expect_findings(
    "util/ exporters may read telemetry", "fedsearch/util/trace_export.cc",
    "void Export(const Tracer::Span& span) {\n"
    "  Write(span.start_ns, span.duration_ns);\n"
    "  for (const auto& s : Tracer::Global().snapshot()) Write(s.start_ns, 0);\n"
    "}\n",
    [])

expect_findings(
    "telemetry read-back in comments is ignored",
    "fedsearch/core/commented_readback.cc",
    "// Reading span.start_ns here would violate the write-only contract.\n"
    "// Percentile(...) computation belongs in bench/, not here.\n",
    [])

expect_findings(
    "writing enqueue_ns fields is not a read-back",
    "fedsearch/broker/ok_enqueue.cc",
    "void Mark(QueueItem& item) { item.enqueue_ns = util::MonotonicNanos(); }\n",
    [])

# --- CLI behaviour --------------------------------------------------------

status, _ = run_lint(Path(tempfile.gettempdir()) / "lint-selftest-missing")
check("missing root exits 2", status == 2, f"(got {status})")

print()
if FAILURES:
    print(f"lint_determinism_selftest: {len(FAILURES)} check(s) FAILED")
    sys.exit(1)
print("lint_determinism_selftest: all checks passed")
