#!/usr/bin/env python3
"""Determinism lint for the fedsearch C++ tree.

The reproduction pipeline promises bit-identical results for a fixed seed,
across serial and parallel runs. Two classes of C++ quietly break that
promise, so this lint bans them at review time:

1. Ambient randomness (all of src/):
   - std::rand / srand / rand()
   - std::random_device (hardware entropy; different every run)
   - std::mt19937 / std::minstd_rand / std::default_random_engine
     (raw engines bypass the forkable util::Rng streams)
   - time-seeded RNGs: time(nullptr)-style seeds, clock(), or a
     <chrono> ::now() feeding anything seed/rng/engine-like
   The only file allowed to own a raw engine is src/fedsearch/util/rng.cc
   (and its header), which wraps it behind deterministic seeding.

2. Order-dependent iteration (restricted TUs only: selection/*, broker/*,
   core/adaptive.cc, core/shrinkage.cc, core/live_metasearcher.cc,
   corpus/churn.cc, sampling/refresh_scheduler.cc):
   Range-for over a std::unordered_map / std::unordered_set makes
   floating-point accumulation order depend on hash layout, which varies
   across standard libraries and element insertion histories. Scoring and
   shrinkage math must iterate in a defined order (sort first, or iterate
   an ordered sibling container). The broker directory is restricted for
   the same reason: its virtual-time schedule promises bit-identical
   request dispositions per seed, so any accumulation there must also be
   order-defined. The live-churn TUs (epoch publication, corpus churn,
   refresh scheduling) carry the same promise: probe picks and epoch
   swaps must replay bit-identically per seed, so drift-rate EWMAs and
   update batches must not be accumulated in hash order.

3. Direct clock reads (all of src/ except util/):
   std::chrono *_clock::now() outside util/ invites wall time into
   computation. util::MonotonicNanos() is the sanctioned clock read —
   it feeds the metrics/trace layer, which is observational by
   construction (measured durations never flow back into scored
   results).

4. Telemetry read-back (all of src/ except util/):
   The trace/metrics layer is write-only for the rest of src/: spans and
   histograms absorb wall time, and nothing reads it back. Touching a
   recorded span's timestamps (.start_ns / .duration_ns), pulling the
   tracer's span buffer (snapshot()), or computing latency aggregates
   (Percentile(...)) inside src/ control flow would let real thread
   timing steer computation — exactly the nondeterminism the virtual
   schedule exists to exclude. Exporters and benches may read these;
   they live in util/ and bench/, outside this rule's reach.

Escape hatch: a line (or the line directly above it) containing
    // ORDER-INDEPENDENT: <why the result does not depend on order>
suppresses rule 2 for that loop. There is deliberately no escape hatch
for rules 1, 3, and 4; plumb util::Rng / util::MonotonicNanos through,
and keep telemetry consumption in util/ exporters or bench/ tools.

Usage: lint_determinism.py ROOT [ROOT...]
Exit status: 0 clean, 1 violations found, 2 usage/IO error.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

CXX_SUFFIXES = {".cc", ".h"}

# Files allowed to hold a raw random engine.
RNG_ALLOWLIST = ("util/rng.cc", "util/rng.h")

# TUs where unordered iteration is banned without justification.
RESTRICTED_DIRS = ("/selection/", "/broker/")
RESTRICTED_FILES = ("core/adaptive.cc", "core/shrinkage.cc",
                    "core/live_metasearcher.cc", "corpus/churn.cc",
                    "sampling/refresh_scheduler.cc")

ESCAPE_HATCH = "ORDER-INDEPENDENT:"

BANNED_RANDOMNESS = [
    (re.compile(r"\bstd::rand\b|\bsrand\s*\(|(?<![:\w])rand\s*\("),
     "std::rand/srand is not seedable per-stream; use util::Rng"),
    (re.compile(r"\brandom_device\b"),
     "std::random_device draws ambient entropy; use util::Rng with a fixed seed"),
    (re.compile(r"\b(mt19937(_64)?|minstd_rand0?|default_random_engine|"
                r"ranlux\d+(_base)?|knuth_b)\b"),
     "raw <random> engines bypass util::Rng's deterministic fork streams"),
    (re.compile(r"\btime\s*\(\s*(nullptr|NULL|0)\s*\)|\bclock\s*\(\s*\)"),
     "wall-clock values must not influence computation; results must replay"),
]

TIME_SEED = re.compile(r"::now\s*\(\s*\)")
SEEDY_CONTEXT = re.compile(r"seed|rng|engine|random", re.IGNORECASE)

# Rule 3: the named standard clocks may only be read inside util/ (where
# MonotonicNanos wraps them for the metrics/trace layer).
CLOCK_NOW = re.compile(
    r"\b(?:steady_clock|system_clock|high_resolution_clock)\s*::\s*now\s*\(")

# Rule 4: telemetry is write-only outside util/ — recorded timestamps and
# latency aggregates must never be read back into src/ control flow.
TELEMETRY_READBACK = [
    (re.compile(r"[.\->]\s*(?:start_ns|duration_ns)\b"),
     "reads a recorded span timestamp; telemetry is write-only outside "
     "util/ — wall time must not steer computation"),
    (re.compile(r"[.\->:]\s*snapshot\s*\(\s*\)"),
     "pulls the recorded span/metric buffer; consume telemetry in util/ "
     "exporters or bench/ tools, not in src/ logic"),
    (re.compile(r"\bPercentile\s*\("),
     "computes a latency aggregate in src/; thread-timing-derived "
     "statistics must stay observational (util/ or bench/)"),
]

UNORDERED_DECL = re.compile(
    r"\bunordered_(?:map|set|multimap|multiset)\s*<[^;{]*?>[\s*&]*(\w+)\s*[;,={(]")
RANGE_FOR = re.compile(r"\bfor\s*\(.*?:\s*\*?([A-Za-z_]\w*(?:[.\->\w]|::)*)\s*\)")
UNORDERED_INLINE = re.compile(r"\bfor\s*\([^;]*:\s*[^;]*unordered_(?:map|set)")


def strip_comments_and_strings(text: str) -> str:
    """Blank out comments and string/char literals, preserving line structure."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            j = n if j == -1 else j
            out.append(" " * (j - i))
            i = j
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            j = n if j == -1 else j + 2
            out.append("".join(ch if ch == "\n" else " " for ch in text[i:j]))
            i = j
        elif c in "\"'":
            quote = c
            j = i + 1
            while j < n and text[j] != quote:
                j += 2 if text[j] == "\\" else 1
            j = min(j + 1, n)
            out.append(c + " " * (j - i - 2) + (quote if j - i >= 2 else ""))
            i = j
        else:
            out.append(c)
            i += 1
    return "".join(out)


def is_restricted(rel: str) -> bool:
    return any(d in rel for d in RESTRICTED_DIRS) or rel.endswith(RESTRICTED_FILES)


def lint_file(path: Path, root: Path) -> list[str]:
    rel = path.relative_to(root.parent if root.is_file() else root).as_posix()
    try:
        raw = path.read_text(encoding="utf-8", errors="replace")
    except OSError as err:
        return [f"{path}: unreadable: {err}"]

    raw_lines = raw.splitlines()
    code_lines = strip_comments_and_strings(raw).splitlines()
    findings = []

    rng_exempt = rel.endswith(RNG_ALLOWLIST)
    if not rng_exempt:
        for lineno, code in enumerate(code_lines, start=1):
            for pattern, why in BANNED_RANDOMNESS:
                if pattern.search(code):
                    findings.append(f"{path}:{lineno}: {why}")
            if TIME_SEED.search(code) and SEEDY_CONTEXT.search(code):
                findings.append(
                    f"{path}:{lineno}: time-seeded RNG; seeds must come from "
                    "configuration, not the clock")

    clock_exempt = "/util/" in rel or rel.startswith("util/")
    if not clock_exempt:
        for lineno, code in enumerate(code_lines, start=1):
            if CLOCK_NOW.search(code):
                findings.append(
                    f"{path}:{lineno}: direct clock read outside util/; "
                    "route timing through util::MonotonicNanos() so wall "
                    "time stays observational")
            for pattern, why in TELEMETRY_READBACK:
                if pattern.search(code):
                    findings.append(f"{path}:{lineno}: {why}")

    if is_restricted(rel):
        unordered_vars: set[str] = set()
        for code in code_lines:
            for match in UNORDERED_DECL.finditer(code):
                unordered_vars.add(match.group(1))
        for lineno, code in enumerate(code_lines, start=1):
            # Justified if the marker is on the loop line itself or anywhere
            # in the contiguous //-comment block directly above it.
            justified = ESCAPE_HATCH in raw_lines[lineno - 1]
            k = lineno - 2
            while not justified and k >= 0 and \
                    raw_lines[k].lstrip().startswith("//"):
                justified = ESCAPE_HATCH in raw_lines[k]
                k -= 1
            if justified:
                continue
            hit = UNORDERED_INLINE.search(code)
            if not hit:
                m = RANGE_FOR.search(code)
                if m:
                    # Match either the whole sequence expression or its last
                    # member segment against known unordered declarations.
                    seq = m.group(1)
                    tail = re.split(r"[.\->]|::", seq)[-1]
                    if seq in unordered_vars or tail in unordered_vars:
                        hit = m
            if hit:
                findings.append(
                    f"{path}:{lineno}: range-for over unordered container in a "
                    f"determinism-critical TU; sort first or justify with "
                    f"// {ESCAPE_HATCH} <reason>")
    return findings


def main(argv: list[str]) -> int:
    if len(argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    findings = []
    checked = 0
    for root_arg in argv[1:]:
        root = Path(root_arg)
        if not root.exists():
            print(f"lint_determinism: no such path: {root}", file=sys.stderr)
            return 2
        files = [root] if root.is_file() else sorted(
            p for p in root.rglob("*") if p.suffix in CXX_SUFFIXES)
        for path in files:
            findings.extend(lint_file(path, root))
            checked += 1
    for finding in findings:
        print(finding)
    print(f"lint_determinism: {checked} file(s), {len(findings)} finding(s)",
          file=sys.stderr)
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
