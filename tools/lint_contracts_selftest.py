#!/usr/bin/env python3
"""Self-test for lint_contracts.py.

Two layers, both run by ctest (label: lint):

1. Committed fixtures (tools/fixtures/contracts/): good/ must lint clean,
   bad/ must produce exactly the expected findings. The fixtures are real
   files under review like any code, so the expected shapes stay visible
   in the tree.
2. Synthetic trees: edge cases seeded into a temp directory, in the
   lint_determinism_selftest mold, covering each rule's boundary
   (allowlist, escape hatch, attribute forms, the status.h covenant).
"""

from __future__ import annotations

import importlib.util
import io
import sys
import tempfile
from contextlib import redirect_stderr, redirect_stdout
from pathlib import Path

HERE = Path(__file__).resolve().parent
SPEC = importlib.util.spec_from_file_location(
    "lint_contracts", HERE / "lint_contracts.py")
LINT = importlib.util.module_from_spec(SPEC)
SPEC.loader.exec_module(LINT)

FIXTURES = HERE / "fixtures" / "contracts"

FAILURES: list[str] = []


def run_lint(*roots: Path) -> tuple[int, str]:
    out, err = io.StringIO(), io.StringIO()
    with redirect_stdout(out), redirect_stderr(err):
        status = LINT.main(["lint_contracts.py"] + [str(r) for r in roots])
    return status, out.getvalue()


def check(name: str, condition: bool, detail: str = "") -> None:
    if condition:
        print(f"  ok: {name}")
    else:
        FAILURES.append(name)
        print(f"FAIL: {name} {detail}")


def expect_findings(name: str, rel_path: str, code: str,
                    expected_fragments: list[str]) -> None:
    """Lint `code` at `rel_path` inside a scratch tree; expect each fragment
    (and only as many findings as fragments)."""
    with tempfile.TemporaryDirectory() as tmp:
        src = Path(tmp) / "src"
        target = src / rel_path
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(code, encoding="utf-8")
        status, output = run_lint(src)
        want_status = 1 if expected_fragments else 0
        check(f"{name}: exit status {want_status}", status == want_status,
              f"(got {status}, output: {output!r})")
        findings = [line for line in output.splitlines() if line.strip()]
        check(f"{name}: {len(expected_fragments)} finding(s)",
              len(findings) == len(expected_fragments),
              f"(got {findings})")
        for fragment in expected_fragments:
            check(f"{name}: mentions {fragment!r}",
                  any(fragment in f for f in findings), f"(got {findings})")


# --- Committed fixtures ----------------------------------------------------

status, output = run_lint(FIXTURES / "good")
check("good fixtures lint clean", status == 0, f"(output: {output!r})")

status, output = run_lint(FIXTURES / "bad" / "raw_primitives.h")
bad_lines = [line for line in output.splitlines() if line.strip()]
check("raw_primitives.h fails", status == 1)
check("raw_primitives.h: 4 finding(s)", len(bad_lines) == 4,
      f"(got {bad_lines})")
check("raw_primitives.h flags std::mutex",
      any("std::mutex" in f for f in bad_lines), f"(got {bad_lines})")
check("raw_primitives.h flags std::condition_variable",
      any("condition_variable" in f for f in bad_lines), f"(got {bad_lines})")
check("raw_primitives.h flags std::lock_guard",
      any("lock guards" in f for f in bad_lines), f"(got {bad_lines})")

status, output = run_lint(FIXTURES / "bad" / "unguarded_mutex.h")
bad_lines = [line for line in output.splitlines() if line.strip()]
check("unguarded_mutex.h fails", status == 1)
check("unguarded_mutex.h: 2 finding(s)", len(bad_lines) == 2,
      f"(got {bad_lines})")
check("unguarded_mutex.h flags guard coverage",
      any("guards no member" in f for f in bad_lines), f"(got {bad_lines})")
check("unguarded_mutex.h flags missing lock order",
      any("Lock order" in f for f in bad_lines), f"(got {bad_lines})")

# --- Rule 1: bare standard primitives --------------------------------------

expect_findings(
    "std::mutex member outside util/mutex.h", "fedsearch/core/bad_mutex.h",
    "class C { std::mutex mu_; };\n",
    ["bare std::mutex"])

expect_findings(
    "std::shared_mutex is also banned", "fedsearch/core/bad_shared.h",
    "class C { std::shared_mutex mu_; };\n",
    ["bare std::mutex"])

expect_findings(
    "std::unique_lock in a .cc", "fedsearch/broker/bad_lock.cc",
    "void F() { std::unique_lock<std::mutex> l(mu); }\n",
    ["standard lock guards", "bare std::mutex"])

expect_findings(
    "util/mutex.h may own the raw primitives", "fedsearch/util/mutex.h",
    "class Mutex { std::mutex mu_; std::condition_variable cv_; };\n",
    [])

expect_findings(
    "mentions in comments are ignored", "fedsearch/core/commented.h",
    "// std::mutex is banned here; use util::Mutex (see util/mutex.h)\n",
    [])

# --- Rule 2: guard coverage ------------------------------------------------

expect_findings(
    "guarded mutex with lock order is clean", "fedsearch/core/good.h",
    "// Lock order: mu_ is terminal.\n"
    "class C {\n"
    "  mutable util::Mutex mu_;\n"
    "  int x_ FEDSEARCH_GUARDED_BY(mu_) = 0;\n"
    "};\n",
    [])

expect_findings(
    "unguarded mutex without justification", "fedsearch/core/unguarded.h",
    "// Lock order: mu_ is terminal.\n"
    "class C {\n"
    "  util::Mutex mu_;\n"
    "  int x_ = 0;\n"
    "};\n",
    ["guards no member"])

expect_findings(
    "LOCK-FREE marker on the declaration line suppresses",
    "fedsearch/core/region_inline.h",
    "// Lock order: run_mu_ is terminal.\n"
    "class C {\n"
    "  util::Mutex run_mu_;  // LOCK-FREE: region lock, see RunExclusive()\n"
    "};\n",
    [])

expect_findings(
    "LOCK-FREE marker in the block above suppresses",
    "fedsearch/core/region_block.h",
    "// Lock order: run_mu_ -> mu_.\n"
    "class C {\n"
    "  // LOCK-FREE: serializes callers; published state is guarded by the\n"
    "  // inner lock, so no member is guarded by this mutex directly.\n"
    "  util::Mutex run_mu_ FEDSEARCH_ACQUIRED_BEFORE(mu_);\n"
    "  util::Mutex mu_;\n"
    "  int x_ FEDSEARCH_GUARDED_BY(mu_) = 0;\n"
    "};\n",
    [])

expect_findings(
    "attribute-suffixed declaration is still seen",
    "fedsearch/core/attr_decl.h",
    "// Lock order: a_ -> b_.\n"
    "class C {\n"
    "  util::Mutex a_ FEDSEARCH_ACQUIRED_BEFORE(b_);\n"
    "  util::Mutex b_;\n"
    "  int x_ FEDSEARCH_GUARDED_BY(b_) = 0;\n"
    "};\n",
    ["'a_' guards no member"])

expect_findings(
    "nested-struct member guard (shard.mu form) counts",
    "fedsearch/core/shard.h",
    "// Lock order: mu is terminal (one shard per lock).\n"
    "struct Shard {\n"
    "  util::Mutex mu;\n"
    "  int entries FEDSEARCH_GUARDED_BY(mu) = 0;\n"
    "};\n",
    [])

expect_findings(
    "MutexLock and Mutex& parameters do not trip the member pattern",
    "fedsearch/core/lock_use.cc",
    "void F(util::Mutex& mu) { util::MutexLock lock(mu); }\n",
    [])

# --- Rule 3: lock-order documentation --------------------------------------

expect_findings(
    "mutex file without a Lock order comment", "fedsearch/core/no_order.h",
    "class C {\n"
    "  util::Mutex mu_;\n"
    "  int x_ FEDSEARCH_GUARDED_BY(mu_) = 0;\n"
    "};\n",
    ["Lock order"])

expect_findings(
    "files without mutex members need no lock-order comment",
    "fedsearch/core/stateless.h",
    "class C { int x_ = 0; };\n",
    [])

# --- Rule 4: the status.h covenant -----------------------------------------

expect_findings(
    "status.h with both classes nodiscard is clean",
    "fedsearch/util/status.h",
    "class [[nodiscard]] Status {};\n"
    "template <typename T>\n"
    "class [[nodiscard]] StatusOr {};\n",
    [])

expect_findings(
    "status.h missing nodiscard on Status",
    "fedsearch/util/status.h",
    "class Status {};\n"
    "template <typename T>\n"
    "class [[nodiscard]] StatusOr {};\n",
    ["class [[nodiscard]] Status"])

expect_findings(
    "status.h missing nodiscard on StatusOr",
    "fedsearch/util/status.h",
    "class [[nodiscard]] Status {};\n"
    "template <typename T>\n"
    "class StatusOr {};\n",
    ["class [[nodiscard]] StatusOr"])

# --- CLI behaviour ---------------------------------------------------------

status, _ = run_lint(Path(tempfile.gettempdir()) / "contracts-missing-root")
check("missing root exits 2", status == 2, f"(got {status})")

print()
if FAILURES:
    print(f"lint_contracts_selftest: {len(FAILURES)} check(s) FAILED")
    sys.exit(1)
print("lint_contracts_selftest: all checks passed")
