// Positive fixture: the shape lint_contracts accepts. A mutex member with
// GUARDED_BY-covered state, a region lock with a LOCK-FREE justification,
// and a lock-order comment. Compiled by nothing; linted by
// lint_contracts_selftest.py, which expects zero findings here.
#ifndef TOOLS_FIXTURES_CONTRACTS_GOOD_ANNOTATED_CACHE_H_
#define TOOLS_FIXTURES_CONTRACTS_GOOD_ANNOTATED_CACHE_H_

#include <cstddef>

#include "fedsearch/util/mutex.h"
#include "fedsearch/util/thread_annotations.h"

namespace fixture {

class AnnotatedCache {
 public:
  void Put(size_t key, double value) FEDSEARCH_EXCLUDES(mu_);
  double Get(size_t key) const FEDSEARCH_EXCLUDES(mu_);

 private:
  // Lock order: run_mu_ -> mu_; mu_ is terminal.
  mutable fedsearch::util::Mutex mu_;
  size_t size_ FEDSEARCH_GUARDED_BY(mu_) = 0;
  double last_value_ FEDSEARCH_GUARDED_BY(mu_) = 0.0;

  // LOCK-FREE: serializes Rebuild() callers as a region lock; the rebuilt
  // state is published under mu_, so no member is guarded by this mutex.
  fedsearch::util::Mutex run_mu_ FEDSEARCH_ACQUIRED_BEFORE(mu_);
};

}  // namespace fixture

#endif  // TOOLS_FIXTURES_CONTRACTS_GOOD_ANNOTATED_CACHE_H_
