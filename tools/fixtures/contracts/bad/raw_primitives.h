// Negative fixture: every rule lint_contracts enforces, violated once.
// Compiled by nothing; linted by lint_contracts_selftest.py, which expects
// exactly the findings listed below (one per marked line).
#ifndef TOOLS_FIXTURES_CONTRACTS_BAD_RAW_PRIMITIVES_H_
#define TOOLS_FIXTURES_CONTRACTS_BAD_RAW_PRIMITIVES_H_

#include <condition_variable>
#include <mutex>

namespace fixture {

class RawPrimitives {
 public:
  void Touch() {
    std::lock_guard<std::mutex> lock(raw_mu_);  // banned guard + banned mutex
    ++count_;
  }

 private:
  std::mutex raw_mu_;            // rule 1: bare std::mutex
  std::condition_variable cv_;   // rule 1: bare std::condition_variable
  int count_ = 0;
};

}  // namespace fixture

#endif  // TOOLS_FIXTURES_CONTRACTS_BAD_RAW_PRIMITIVES_H_
