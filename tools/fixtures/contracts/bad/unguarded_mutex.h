// Negative fixture: an annotated util::Mutex member that guards nothing
// and has no LOCK-FREE justification, in a file missing the lock-order
// documentation comment — rules 2 and 3. Compiled by nothing; linted by
// lint_contracts_selftest.py.
#ifndef TOOLS_FIXTURES_CONTRACTS_BAD_UNGUARDED_MUTEX_H_
#define TOOLS_FIXTURES_CONTRACTS_BAD_UNGUARDED_MUTEX_H_

#include "fedsearch/util/mutex.h"

namespace fixture {

class UnguardedMutex {
 private:
  fedsearch::util::Mutex mu_;  // guards no member, no justification
  int count_ = 0;              // should be FEDSEARCH_GUARDED_BY(mu_)
};

}  // namespace fixture

#endif  // TOOLS_FIXTURES_CONTRACTS_BAD_UNGUARDED_MUTEX_H_
