#!/usr/bin/env python3
"""Concurrency & return-value contract lint for the fedsearch C++ tree.

The clang thread-safety analysis job (ci.sh tsa) proves lock discipline,
but only for code that is *annotated* — an unannotated mutex is invisible
to it, and the analyzer is only present on clang hosts. This lint closes
both gaps structurally, so a regression is caught on any machine:

1. Bare standard synchronization primitives (all of src/):
   std::mutex / std::shared_mutex / std::condition_variable and their
   guards (std::lock_guard, std::unique_lock, std::scoped_lock) carry no
   capability annotations under libstdc++, so locking them is invisible
   to -Wthread-safety. All synchronization must go through the annotated
   util::Mutex / util::MutexLock / util::CondVar wrappers. The only file
   allowed to own the raw primitives is src/fedsearch/util/mutex.h,
   which wraps them.

2. Guard coverage (all of src/): every util::Mutex member declaration
   must either guard something — at least one member in the same file
   annotated FEDSEARCH_GUARDED_BY(that mutex) — or carry an explicit
       // LOCK-FREE: <why no member is guarded by this mutex>
   justification on its declaration line or in the contiguous comment
   block directly above it (e.g. a mutex that only serializes a code
   region, like ThreadPool's run_mu_). An unguarded, unjustified mutex
   usually means someone added a lock but forgot the GUARDED_BY lines,
   which silently exempts that state from the tsa job.

3. Lock-order documentation (all of src/): every file that declares a
   util::Mutex member must contain a "Lock order:" comment naming where
   its lock(s) sit in the acquisition order (or stating they are
   terminal). The tsa job can only check orders that are annotated
   (FEDSEARCH_ACQUIRED_BEFORE) or documented; this makes the
   documentation non-optional.

4. Status nodiscard covenant (src/fedsearch/util/status.h): Status and
   StatusOr must stay class-level [[nodiscard]]. Every function
   returning them inherits the must-check contract from the class, and
   -Werror=unused-result (set for the whole tree) enforces it at call
   sites — but only while the class annotation survives, so this lint
   pins it.

There is deliberately no escape hatch for rules 1, 3, and 4; rule 2's
// LOCK-FREE: marker is the sanctioned exemption for region locks.

Usage: lint_contracts.py ROOT [ROOT...]
Exit status: 0 clean, 1 violations found, 2 usage/IO error.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

CXX_SUFFIXES = {".cc", ".h"}

# The one file allowed to own unannotated standard primitives (it wraps
# them behind the annotated capability types).
RAW_PRIMITIVE_ALLOWLIST = ("util/mutex.h",)

LOCK_FREE_MARKER = "LOCK-FREE:"
LOCK_ORDER_MARKER = "Lock order:"

BANNED_PRIMITIVES = [
    (re.compile(r"\bstd::(?:recursive_|shared_|timed_|recursive_timed_)?"
                r"mutex\b"),
     "bare std::mutex is invisible to -Wthread-safety; use util::Mutex"),
    (re.compile(r"\bstd::condition_variable(?:_any)?\b"),
     "std::condition_variable waits are invisible to -Wthread-safety; "
     "use util::CondVar"),
    (re.compile(r"\bstd::(?:lock_guard|unique_lock|scoped_lock)\b"),
     "standard lock guards carry no capability annotations; use "
     "util::MutexLock"),
]

# A util::Mutex member declaration: optional cv-qualifiers, optional
# trailing thread-safety attribute macros, ending in ; or = or {.
# References and MutexLock/CondVar declarations deliberately do not match.
MUTEX_MEMBER = re.compile(
    r"\b(?:util::)?Mutex\s+(\w+)\s*(?:FEDSEARCH_\w+\s*\([^)]*\)\s*)*[;={]")


def strip_comments_and_strings(text: str) -> str:
    """Blank out comments and string/char literals, preserving line structure."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            j = n if j == -1 else j
            out.append(" " * (j - i))
            i = j
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            j = n if j == -1 else j + 2
            out.append("".join(ch if ch == "\n" else " " for ch in text[i:j]))
            i = j
        elif c in "\"'":
            quote = c
            j = i + 1
            while j < n and text[j] != quote:
                j += 2 if text[j] == "\\" else 1
            j = min(j + 1, n)
            out.append(c + " " * (j - i - 2) + (quote if j - i >= 2 else ""))
            i = j
        else:
            out.append(c)
            i += 1
    return "".join(out)


def has_marker_above(raw_lines: list[str], lineno: int, marker: str) -> bool:
    """True if `marker` is on line `lineno` (1-based) or anywhere in the
    contiguous //-comment block directly above it."""
    if marker in raw_lines[lineno - 1]:
        return True
    k = lineno - 2
    while k >= 0 and raw_lines[k].lstrip().startswith("//"):
        if marker in raw_lines[k]:
            return True
        k -= 1
    return False


def lint_status_header(path: Path, raw: str) -> list[str]:
    findings = []
    code = strip_comments_and_strings(raw)
    for cls in ("Status", "StatusOr"):
        if not re.search(r"class\s*\[\[\s*nodiscard\s*\]\]\s*" + cls + r"\b",
                         code):
            findings.append(
                f"{path}: class {cls} must be declared "
                f"'class [[nodiscard]] {cls}' — the class-level attribute is "
                f"what makes every {cls}-returning declaration must-check "
                f"under -Werror=unused-result")
    return findings


def lint_file(path: Path, root: Path) -> list[str]:
    rel = path.relative_to(root.parent if root.is_file() else root).as_posix()
    try:
        raw = path.read_text(encoding="utf-8", errors="replace")
    except OSError as err:
        return [f"{path}: unreadable: {err}"]

    if rel.endswith("util/status.h"):
        return lint_status_header(path, raw)

    raw_lines = raw.splitlines()
    code = strip_comments_and_strings(raw)
    code_lines = code.splitlines()
    findings = []

    # Rule 1: bare standard primitives.
    if not rel.endswith(RAW_PRIMITIVE_ALLOWLIST):
        for lineno, line in enumerate(code_lines, start=1):
            for pattern, why in BANNED_PRIMITIVES:
                if pattern.search(line):
                    findings.append(f"{path}:{lineno}: {why}")

    # Rules 2 and 3: guard coverage and lock-order documentation for every
    # util::Mutex member this file declares.
    mutex_decls: list[tuple[int, str]] = []  # (lineno, member name)
    for lineno, line in enumerate(code_lines, start=1):
        for match in MUTEX_MEMBER.finditer(line):
            mutex_decls.append((lineno, match.group(1)))

    for lineno, name in mutex_decls:
        guarded = re.search(
            r"FEDSEARCH(?:_PT)?_GUARDED_BY\s*\(\s*[\w.>-]*\b"
            + re.escape(name) + r"\s*\)", code)
        if not guarded and not has_marker_above(raw_lines, lineno,
                                               LOCK_FREE_MARKER):
            findings.append(
                f"{path}:{lineno}: mutex member '{name}' guards no member "
                f"(no FEDSEARCH_GUARDED_BY({name}) in this file); annotate "
                f"the state it protects or justify with // {LOCK_FREE_MARKER}"
                f" <reason>")

    if mutex_decls and LOCK_ORDER_MARKER not in raw:
        findings.append(
            f"{path}:{mutex_decls[0][0]}: file declares a mutex member but "
            f"no \"{LOCK_ORDER_MARKER}\" comment; document where its lock(s) "
            f"sit in the acquisition order (or state they are terminal)")

    return findings


def main(argv: list[str]) -> int:
    if len(argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    findings = []
    checked = 0
    for root_arg in argv[1:]:
        root = Path(root_arg)
        if not root.exists():
            print(f"lint_contracts: no such path: {root}", file=sys.stderr)
            return 2
        files = [root] if root.is_file() else sorted(
            p for p in root.rglob("*") if p.suffix in CXX_SUFFIXES)
        for path in files:
            findings.extend(lint_file(path, root))
            checked += 1
    for finding in findings:
        print(finding)
    print(f"lint_contracts: {checked} file(s), {len(findings)} finding(s)",
          file=sys.stderr)
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
