#!/usr/bin/env python3
"""Clang thread-safety-analysis driver (ci.sh tsa job).

The production toolchain may be gcc, which compiles the FEDSEARCH_* TSA
macros (see src/fedsearch/util/thread_annotations.h) as no-ops. This
driver is what actually enforces them: it replays every project
translation unit through clang with -Wthread-safety promoted to an
error, using the compile commands exported by the shared build-ci/static
tree, so the annotations are checked with exactly the include paths and
defines the real build uses.

Only -fsyntax-only is run — no object files are produced and the tree
never needs to have been built, only configured.

Usage:
    run_clang_tsa.py <compile_commands.json> [--clang PATH] [-j N]

Exit status: 0 clean, 1 thread-safety (or other promoted) diagnostics,
2 usage error / missing inputs / no clang on PATH.
"""

from __future__ import annotations

import argparse
import concurrent.futures
import json
import os
import shlex
import shutil
import subprocess
import sys
from pathlib import Path

# Flags appended to every replayed command. -Wthread-safety is the
# gating group; the -beta group (e.g. pass-by-reference analysis) is
# surfaced as warnings so new clang releases cannot break CI while still
# being visible in the log. Unknown-warning noise from gcc-only flags in
# the recorded command lines is silenced rather than fought flag by flag.
TSA_FLAGS = [
    "-fsyntax-only",
    "-Wthread-safety",
    "-Werror=thread-safety",
    "-Wthread-safety-beta",
    "-Wno-unknown-warning-option",
]

# Project TU prefixes, relative to the source root, that the sweep
# covers. Anything else in the database (none today; defensive against
# future vendored code) is skipped.
PROJECT_DIRS = ("src", "tests", "bench")

CLANG_CANDIDATES = ["clang++"] + [f"clang++-{v}" for v in range(21, 13, -1)]


def find_clang(explicit: str | None) -> str | None:
    if explicit:
        return explicit if shutil.which(explicit) else None
    for name in CLANG_CANDIDATES:
        if shutil.which(name):
            return name
    return None


def load_entries(db_path: Path) -> list[dict]:
    with db_path.open(encoding="utf-8") as fh:
        return json.load(fh)


def entry_args(entry: dict) -> list[str]:
    if "arguments" in entry:
        return list(entry["arguments"])
    return shlex.split(entry["command"])


def is_project_file(file_path: Path, source_root: Path) -> bool:
    try:
        rel = file_path.resolve().relative_to(source_root)
    except ValueError:
        return False
    return rel.parts[:1] != () and rel.parts[0] in PROJECT_DIRS


def rewrite_command(args: list[str], clang: str) -> list[str]:
    """Swap the recorded compiler for clang and drop codegen-only flags."""
    out = [clang]
    skip_next = False
    for arg in args[1:]:
        if skip_next:
            skip_next = False
            continue
        if arg in ("-o", "-MF", "-MT", "-MQ"):
            skip_next = True
            continue
        if arg in ("-c", "-MD", "-MMD"):
            continue
        out.append(arg)
    out.extend(TSA_FLAGS)
    return out


def check_one(entry: dict, clang: str) -> tuple[str, int, str]:
    cmd = rewrite_command(entry_args(entry), clang)
    proc = subprocess.run(
        cmd, cwd=entry.get("directory", "."),
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)
    return entry["file"], proc.returncode, proc.stdout


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="run_clang_tsa.py",
        description="Replay project TUs through clang -Wthread-safety.")
    parser.add_argument("database", help="path to compile_commands.json")
    parser.add_argument("--clang", default=None,
                        help="clang++ binary to use (default: search PATH)")
    parser.add_argument("-j", "--jobs", type=int,
                        default=max(1, os.cpu_count() or 1),
                        help="concurrent clang invocations")
    opts = parser.parse_args(argv[1:])

    db_path = Path(opts.database)
    if not db_path.is_file():
        print(f"run_clang_tsa: no such file: {db_path}", file=sys.stderr)
        return 2

    clang = find_clang(opts.clang)
    if clang is None:
        print("run_clang_tsa: no clang++ on PATH (tried: "
              f"{opts.clang or ', '.join(CLANG_CANDIDATES)})", file=sys.stderr)
        return 2

    # The database lives at <build>/compile_commands.json; the source
    # root is wherever this script's repo checkout is.
    source_root = Path(__file__).resolve().parent.parent

    entries = [e for e in load_entries(db_path)
               if is_project_file(Path(e["file"]), source_root)]
    if not entries:
        print("run_clang_tsa: database holds no project TUs", file=sys.stderr)
        return 2

    failures = 0
    with concurrent.futures.ThreadPoolExecutor(max_workers=opts.jobs) as pool:
        for file, rc, output in pool.map(
                lambda e: check_one(e, clang), entries):
            if rc != 0:
                failures += 1
                rel = os.path.relpath(file, source_root)
                print(f"run_clang_tsa: FAIL {rel}")
                sys.stdout.write(output)
            elif output.strip():
                # Non-gating diagnostics (the -beta group): show them.
                sys.stdout.write(output)

    print(f"run_clang_tsa: {clang}: {len(entries)} TU(s), "
          f"{failures} failure(s)")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
